//! Plain-text table rendering and JSON emission for evaluation reports.

use crate::metrics::ScheduleResult;
use crate::pipeline::CompileReport;
use autobraid_telemetry::JsonValue;
use std::fmt::Write;

/// Formats a duration in microseconds the way the paper's tables do:
/// `745`, `1.28K`, `1.34M`.
pub fn format_us(us: f64) -> String {
    let trim = |s: String| {
        if s.contains('.') {
            s.trim_end_matches('0').trim_end_matches('.').to_string()
        } else {
            s
        }
    };
    if us >= 1e8 {
        trim(format!("{:.0}", us / 1e6)) + "M"
    } else if us >= 1e6 {
        trim(format!("{:.2}", us / 1e6)) + "M"
    } else if us >= 1e5 {
        trim(format!("{:.0}", us / 1e3)) + "K"
    } else if us >= 1e4 {
        trim(format!("{:.1}", us / 1e3)) + "K"
    } else if us >= 1e3 {
        trim(format!("{:.2}", us / 1e3)) + "K"
    } else {
        format!("{us:.0}")
    }
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<width$} ", cell, width = widths[c]);
            }
            out.push_str("|\n");
        };
        line(&self.header, &mut out);
        for (c, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if c == cols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// One comparison row: benchmark metadata plus per-scheduler times, in the
/// shape of the paper's Table 2.
pub fn comparison_row(
    circuit_stats: &autobraid_circuit::CircuitStats,
    cp_us: f64,
    baseline: &ScheduleResult,
    ours: &ScheduleResult,
) -> Vec<String> {
    vec![
        circuit_stats.name.clone(),
        circuit_stats.qubits.to_string(),
        circuit_stats.gates.to_string(),
        format_us(cp_us),
        format_us(baseline.time_us()),
        format_us(ours.time_us()),
        format!("{:.2}", ours.speedup_over(baseline)),
    ]
}

/// Serializes one [`ScheduleResult`]'s headline statistics, including
/// the per-layer strategy attribution (`layer_policies`, empty under
/// stats-only recording). The attribution is part of the schedule, not
/// a measurement, so it also appears in — and is byte-checked by — the
/// canonical report.
pub fn schedule_result_json(result: &ScheduleResult) -> JsonValue {
    let layer_policies: Vec<JsonValue> = result
        .layer_policies
        .iter()
        .map(|lp| {
            JsonValue::object([
                ("step", JsonValue::from(lp.step)),
                ("policy", JsonValue::from(lp.policy.as_str())),
                ("reason", JsonValue::from(lp.reason.as_str())),
            ])
        })
        .collect();
    JsonValue::object([
        ("scheduler", JsonValue::from(result.scheduler.as_str())),
        ("benchmark", JsonValue::from(result.benchmark.as_str())),
        ("total_cycles", JsonValue::from(result.total_cycles)),
        ("time_us", JsonValue::from(result.time_us())),
        ("braid_steps", JsonValue::from(result.braid_steps)),
        ("local_steps", JsonValue::from(result.local_steps)),
        ("swap_layers", JsonValue::from(result.swap_layers)),
        ("swap_count", JsonValue::from(result.swap_count)),
        ("peak_utilization", JsonValue::from(result.peak_utilization)),
        ("mean_utilization", JsonValue::from(result.mean_utilization)),
        ("compile_seconds", JsonValue::from(result.compile_seconds)),
        ("layer_policies", JsonValue::Array(layer_policies)),
    ])
}

/// Serializes a full [`CompileReport`] — circuit statistics, schedule
/// outcome, per-stage timings, and (when collected) the telemetry
/// snapshot — as one stable JSON object. The layout of the `telemetry`
/// field is the `autobraid.telemetry/v1` schema of `docs/METRICS.md`.
pub fn compile_report_json(report: &CompileReport) -> JsonValue {
    let timings = JsonValue::object([
        (
            "parse_seconds",
            JsonValue::from(report.timings.parse_seconds),
        ),
        (
            "optimize_seconds",
            JsonValue::from(report.timings.optimize_seconds),
        ),
        (
            "schedule_seconds",
            JsonValue::from(report.timings.schedule_seconds),
        ),
        (
            "verify_seconds",
            JsonValue::from(report.timings.verify_seconds),
        ),
        (
            "total_seconds",
            JsonValue::from(report.timings.total_seconds()),
        ),
    ]);
    JsonValue::object([
        ("circuit", JsonValue::from(report.stats.name.as_str())),
        ("qubits", JsonValue::from(report.stats.qubits)),
        ("gates", JsonValue::from(report.stats.gates)),
        ("gates_removed", JsonValue::from(report.gates_removed)),
        ("schedule", schedule_result_json(&report.outcome.result)),
        ("timings", timings),
        (
            "telemetry",
            report
                .telemetry
                .as_ref()
                .map(|t| t.to_json_value())
                .unwrap_or(JsonValue::Null),
        ),
    ])
}

/// Serializes a [`CompileReport`] with every wall-clock measurement
/// zeroed and telemetry excluded: the *canonical* form of a compile
/// output, byte-identical across runs and thread counts for the same
/// input and seed. This is the value the determinism suite compares and
/// the contract `docs/RUNTIME.md` documents — timings and telemetry are
/// measurements of the run, not part of the compiled result.
pub fn canonical_compile_report_json(report: &CompileReport) -> JsonValue {
    let mut result = report.outcome.result.clone();
    result.compile_seconds = 0.0;
    JsonValue::object([
        ("circuit", JsonValue::from(report.stats.name.as_str())),
        ("qubits", JsonValue::from(report.stats.qubits)),
        ("gates", JsonValue::from(report.stats.gates)),
        ("gates_removed", JsonValue::from(report.gates_removed)),
        ("schedule", schedule_result_json(&result)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_matches_paper_style() {
        assert_eq!(format_us(745.0), "745");
        assert_eq!(format_us(1280.0), "1.28K");
        assert_eq!(format_us(21_000.0), "21K");
        assert_eq!(format_us(135_000.0), "135K");
        assert_eq!(format_us(1_340_000.0), "1.34M");
        // Trailing zeros of integer renderings must survive.
        assert_eq!(format_us(320_456.0), "320K");
        assert_eq!(format_us(200_000.0), "200K");
        assert_eq!(format_us(70_400_000.0), "70.4M");
        assert_eq!(format_us(300_000_000.0), "300M");
        assert_eq!(format_us(10_000.0), "10K");
        assert_eq!(format_us(2_000.0), "2K");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.add_row(["qft16", "1.28K"]);
        t.add_row(["a-long-benchmark-name", "9"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{text}");
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn comparison_row_shape() {
        use autobraid_circuit::generators::qft::qft;
        use autobraid_lattice::TimingModel;
        let c = qft(8).unwrap();
        let stats = autobraid_circuit::CircuitStats::of(&c);
        let timing = TimingModel::default();
        let mut fast = ScheduleResult::new("ours", "qft8", timing);
        fast.total_cycles = 500;
        let mut slow = ScheduleResult::new("base", "qft8", timing);
        slow.total_cycles = 1500;
        let row = comparison_row(&stats, 900.0, &slow, &fast);
        assert_eq!(row.len(), 7);
        assert_eq!(row[1], "8");
        assert_eq!(row[6], "3.00");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["only-one"]);
    }
}
