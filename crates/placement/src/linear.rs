//! Serpentine placement for maximal-degree-2 coupling graphs.
//!
//! The paper's second initial-mapping fine-tuner: when the coupling graph
//! is a set of paths/cycles (e.g. the 1-D Ising model), laying the qubits
//! along a boustrophedon (snake) through the grid makes every coupled
//! pair grid-adjacent, so disjoint pairs always route simultaneously and
//! the schedule hits the critical path.

use crate::coupling::CouplingGraph;
use crate::place::Placement;
use autobraid_circuit::{Circuit, QubitId};
use autobraid_lattice::{Cell, Grid};

/// The serpentine cell sequence of a grid: row 0 left→right, row 1
/// right→left, and so on. Consecutive cells are always grid-adjacent.
pub fn serpentine_cells(grid: &Grid) -> Vec<Cell> {
    let l = grid.cells_per_side();
    let mut cells = Vec::with_capacity(grid.cell_count());
    for r in 0..l {
        if r % 2 == 0 {
            for c in 0..l {
                cells.push(Cell::new(r, c));
            }
        } else {
            for c in (0..l).rev() {
                cells.push(Cell::new(r, c));
            }
        }
    }
    cells
}

/// Places `order[i]` on the `i`-th serpentine cell.
///
/// # Panics
///
/// Panics if the order does not fit the grid or repeats a qubit.
pub fn place_along_serpentine(grid: &Grid, order: &[QubitId]) -> Placement {
    let cells = serpentine_cells(grid);
    assert!(order.len() <= cells.len(), "order longer than the grid");
    let mut qubit_to_cell = vec![None; order.len()];
    for (i, &q) in order.iter().enumerate() {
        let slot = &mut qubit_to_cell[q as usize];
        assert!(slot.is_none(), "qubit {q} appears twice in the order");
        *slot = Some(cells[i]);
    }
    Placement::from_cells(
        grid,
        qubit_to_cell
            .into_iter()
            .map(|c| c.expect("order covers all qubits"))
            .collect(),
    )
}

/// If the circuit's coupling graph has maximal degree ≤ 2, returns the
/// serpentine placement along its linear order; otherwise `None`.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::ising::ising;
/// use autobraid_lattice::Grid;
/// use autobraid_placement::linear::linear_placement;
///
/// let c = ising(9, 1)?;
/// let grid = Grid::with_capacity_for(9);
/// let placement = linear_placement(&c, &grid).expect("Ising couples as a path");
/// // Every coupled pair ends up on adjacent tiles.
/// # Ok::<(), autobraid_circuit::CircuitError>(())
/// ```
pub fn linear_placement(circuit: &Circuit, grid: &Grid) -> Option<Placement> {
    let coupling = CouplingGraph::of(circuit);
    let order = coupling.linear_order()?;
    Some(place_along_serpentine(grid, &order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobraid_circuit::generators::{ising::ising, qft::qft};

    #[test]
    fn serpentine_is_contiguous() {
        let grid = Grid::new(4).unwrap();
        let cells = serpentine_cells(&grid);
        assert_eq!(cells.len(), 16);
        for w in cells.windows(2) {
            assert_eq!(w[0].manhattan_distance(w[1]), 1, "{:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn ising_neighbours_become_adjacent() {
        let c = ising(16, 1).unwrap();
        let grid = Grid::with_capacity_for(16);
        let p = linear_placement(&c, &grid).unwrap();
        let coupling = CouplingGraph::of(&c);
        for (a, b, _) in coupling.edges() {
            assert_eq!(
                p.cell_of(a).manhattan_distance(p.cell_of(b)),
                1,
                "coupled pair ({a},{b}) not adjacent"
            );
        }
        assert!(p.is_consistent(&grid));
    }

    #[test]
    fn dense_graphs_are_rejected() {
        let c = qft(8).unwrap();
        let grid = Grid::with_capacity_for(8);
        assert!(linear_placement(&c, &grid).is_none());
    }

    #[test]
    fn non_square_counts() {
        let c = ising(7, 1).unwrap();
        let grid = Grid::with_capacity_for(7); // 3×3 grid, 2 empty tiles
        let p = linear_placement(&c, &grid).unwrap();
        assert!(p.is_consistent(&grid));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn repeated_qubit_in_order_panics() {
        let grid = Grid::new(2).unwrap();
        let _ = place_along_serpentine(&grid, &[0, 0, 1]);
    }
}
