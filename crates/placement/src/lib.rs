//! Qubit placement for the AutoBraid surface-code scheduler.
//!
//! Implements the paper's initial-placement stage and its two fine-tuners
//! (Fig. 10): coupling-graph analysis ([`coupling`]), a from-scratch
//! multilevel partitioner standing in for METIS ([`partition`]), the
//! partition-to-grid embedding ([`initial`]), simulated annealing on the
//! LLG objective ([`annealing`]), and the serpentine layout for
//! maximal-degree-2 coupling graphs ([`linear`]). The dynamic placement
//! map itself lives in [`place`].
//!
//! Its place in the workspace is described in `DESIGN.md` §4 (crate
//! map). The annealer reports acceptance-rate and objective-trajectory
//! telemetry through `autobraid_telemetry`; the metric names are
//! documented in `docs/METRICS.md`.
//!
//! # Quick example
//!
//! ```
//! use autobraid_circuit::generators::qft::qft;
//! use autobraid_lattice::Grid;
//! use autobraid_placement::initial::partition_placement;
//!
//! let circuit = qft(25)?;
//! let grid = Grid::with_capacity_for(25);
//! let placement = partition_placement(&circuit, &grid);
//! assert!(placement.is_consistent(&grid));
//! # Ok::<(), autobraid_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod coupling;
pub mod initial;
pub mod linear;
pub mod partition;
pub mod place;

pub use annealing::{anneal, anneal_portfolio, AnnealConfig, AnnealOutcome};
pub use coupling::CouplingGraph;
pub use initial::partition_placement;
pub use linear::linear_placement;
pub use place::Placement;
