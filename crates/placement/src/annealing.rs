//! Simulated-annealing refinement of the initial placement on the LLG
//! objective (paper §3.3.1: "keep swapping qubits until the number of
//! k-LLG (k > 3) cannot be reduced anymore").

use crate::place::Placement;
use autobraid_circuit::{Circuit, GateId, ParallelismProfile, QubitId};
use autobraid_lattice::Grid;
use autobraid_router::llg;
use autobraid_router::path::CxRequest;
use autobraid_telemetry::{self as telemetry, Rng64};

/// Annealing parameters. The defaults are tuned so Table 1 regenerates in
/// seconds; scale `iterations` with available time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Swap proposals to evaluate.
    pub iterations: usize,
    /// Initial temperature (in objective units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Maximum number of CX layers sampled for the objective.
    pub max_sampled_layers: usize,
    /// RNG seed (the optimizer is fully deterministic).
    pub seed: u64,
    /// Independent annealing chains for [`anneal_portfolio`]: each chain
    /// runs with its own derived seed and the best final objective wins
    /// (ties break toward the lowest chain index, so the selection is
    /// deterministic). `1` reproduces [`anneal`] exactly.
    pub chains: usize,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 600,
            initial_temperature: 2.0,
            cooling: 0.995,
            max_sampled_layers: 8,
            seed: 0xB81D,
            chains: 1,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOutcome {
    /// The refined placement.
    pub placement: Placement,
    /// Objective before refinement (Σ oversized + non-guaranteed LLGs over
    /// the sampled layers).
    pub initial_objective: u64,
    /// Objective after refinement.
    pub final_objective: u64,
    /// Number of accepted swaps.
    pub accepted_moves: usize,
}

/// The widest CX layers of the circuit — where oversized LLGs can occur.
fn sample_layers(circuit: &Circuit, max_layers: usize) -> Vec<Vec<GateId>> {
    let profile = ParallelismProfile::analyze(circuit);
    let mut cx_layers: Vec<Vec<GateId>> = profile
        .layers()
        .iter()
        .map(|layer| {
            layer
                .iter()
                .copied()
                .filter(|&g| circuit.gate(g).is_two_qubit())
                .collect::<Vec<_>>()
        })
        .filter(|layer| layer.len() >= 4) // LLGs of size > 3 need ≥ 4 CXs
        .collect();
    cx_layers.sort_by_key(|layer| std::cmp::Reverse(layer.len()));
    cx_layers.truncate(max_layers);
    cx_layers
}

/// Annealing objective for one placement: over the sampled layers, each
/// LLG of size `k > 3` contributes `k - 3` (so shrinking a large group is
/// rewarded even before it drops under the Theorem 1 bound), plus 1 more
/// if it is not guaranteed schedulable by Theorem 1/2 — preferring nested
/// structures among the oversized. Zero iff every sampled layer is fully
/// covered by the theorems.
pub fn llg_objective(circuit: &Circuit, layers: &[Vec<GateId>], placement: &Placement) -> u64 {
    let mut total = 0u64;
    for layer in layers {
        let requests: Vec<CxRequest> = layer
            .iter()
            .map(|&g| {
                let (a, b) = circuit.gate(g).pair().expect("layers hold CX gates only");
                CxRequest::new(g, placement.cell_of(a), placement.cell_of(b))
            })
            .collect();
        for group in llg::decompose(&requests) {
            if group.size() > 3 {
                total += group.size() as u64 - 3;
                if !group.guaranteed_schedulable(&requests) {
                    total += 1;
                }
            }
        }
    }
    total
}

/// Incremental evaluation of [`llg_objective`] across swap proposals.
///
/// The objective is a sum of independent per-layer scores, and a swap of
/// qubits `a` and `b` can only change the layers containing a gate that
/// touches `a` or `b`. The cache keeps every layer's score plus a
/// qubit → layers index, so a proposal re-scores only the affected
/// layers (through the allocation-free [`llg::score_layer`]) and a
/// rejection costs nothing. The annealer cross-checks every proposal
/// against the full recompute in debug builds, and reference mode
/// (`autobraid_telemetry::reference_mode`) bypasses the cache entirely.
struct ObjectiveCache {
    /// Per layer: the routing requests under the *current* placement
    /// (committed state plus any pending proposal's patches).
    layer_requests: Vec<Vec<CxRequest>>,
    /// Per layer: each gate's outer bounding box, kept in lockstep with
    /// `layer_requests` so scoring skips the box recomputation.
    layer_boxes: Vec<Vec<autobraid_lattice::BBox>>,
    /// Per qubit: its `(layer, gate index, operand side)` occurrences,
    /// ascending by layer. Gates within one parallelism layer act on
    /// disjoint qubits, so a qubit appears at most once per layer and the
    /// lists come out sorted for free.
    qubit_positions: Vec<Vec<(u32, u32, bool)>>,
    /// Current score of each layer under the committed placement.
    layer_obj: Vec<u64>,
    /// Σ `layer_obj` — the committed objective.
    total: u64,
    scratch: llg::LlgScratch,
    affected: Vec<u32>,
    /// `(layer, gate index, side, previous cell, previous box)` undo log
    /// of the pending proposal's request patches.
    patches: Vec<(
        u32,
        u32,
        bool,
        autobraid_lattice::Cell,
        autobraid_lattice::BBox,
    )>,
    /// `(layer, new score)` of the pending proposal.
    proposed: Vec<(u32, u64)>,
    proposed_total: u64,
}

impl ObjectiveCache {
    fn new(
        circuit: &Circuit,
        layers: &[Vec<GateId>],
        placement: &Placement,
        num_qubits: usize,
    ) -> Self {
        let mut qubit_positions: Vec<Vec<(u32, u32, bool)>> = vec![Vec::new(); num_qubits];
        let layer_requests: Vec<Vec<CxRequest>> = layers
            .iter()
            .enumerate()
            .map(|(l, layer)| {
                layer
                    .iter()
                    .enumerate()
                    .map(|(gi, &g)| {
                        let (a, b) = circuit.gate(g).pair().expect("layers hold CX gates only");
                        qubit_positions[a as usize].push((l as u32, gi as u32, false));
                        qubit_positions[b as usize].push((l as u32, gi as u32, true));
                        CxRequest::new(g, placement.cell_of(a), placement.cell_of(b))
                    })
                    .collect()
            })
            .collect();
        let layer_boxes: Vec<Vec<autobraid_lattice::BBox>> = layer_requests
            .iter()
            .map(|reqs| reqs.iter().map(|r| r.outer_bbox()).collect())
            .collect();
        let mut cache = ObjectiveCache {
            layer_requests,
            layer_boxes,
            qubit_positions,
            layer_obj: vec![0; layers.len()],
            total: 0,
            scratch: llg::LlgScratch::default(),
            affected: Vec::new(),
            patches: Vec::new(),
            proposed: Vec::new(),
            proposed_total: 0,
        };
        for l in 0..cache.layer_boxes.len() {
            let score = llg::score_boxes(&mut cache.scratch, &cache.layer_boxes[l]);
            cache.layer_obj[l] = score;
            cache.total += score;
        }
        cache
    }

    /// Overwrites `q`'s operand slots with its current cell, logging the
    /// previous cells for [`Self::revert`].
    fn patch_qubit(&mut self, q: QubitId, placement: &Placement) {
        let cell = placement.cell_of(q);
        for &(l, gi, side) in &self.qubit_positions[q as usize] {
            let req = &mut self.layer_requests[l as usize][gi as usize];
            let bbox = &mut self.layer_boxes[l as usize][gi as usize];
            let slot = if side { &mut req.b } else { &mut req.a };
            self.patches.push((l, gi, side, *slot, *bbox));
            *slot = cell;
            *bbox = autobraid_lattice::BBox::of_gate(req.a, req.b);
        }
    }

    /// Objective of `placement` (which already has `a` and `b` swapped):
    /// patches the cached requests in place and re-scores only the layers
    /// touching either qubit. The new scores are staged; [`Self::commit`]
    /// keeps them on acceptance, [`Self::revert`] undoes the patches on
    /// rejection.
    fn propose(&mut self, a: QubitId, b: QubitId, placement: &Placement) -> u64 {
        self.affected.clear();
        {
            let (pa, pb) = (
                &self.qubit_positions[a as usize],
                &self.qubit_positions[b as usize],
            );
            let (mut i, mut j) = (0usize, 0usize);
            while i < pa.len() || j < pb.len() {
                let next = match (pa.get(i), pb.get(j)) {
                    (Some(&(x, _, _)), Some(&(y, _, _))) if x == y => {
                        i += 1;
                        j += 1;
                        x
                    }
                    (Some(&(x, _, _)), Some(&(y, _, _))) if x < y => {
                        i += 1;
                        x
                    }
                    (Some(_), Some(&(y, _, _))) => {
                        j += 1;
                        y
                    }
                    (Some(&(x, _, _)), None) => {
                        i += 1;
                        x
                    }
                    (None, Some(&(y, _, _))) => {
                        j += 1;
                        y
                    }
                    (None, None) => unreachable!("loop condition"),
                };
                self.affected.push(next);
            }
        }
        self.patches.clear();
        self.patch_qubit(a, placement);
        self.patch_qubit(b, placement);

        self.proposed.clear();
        let mut total = self.total;
        for k in 0..self.affected.len() {
            let l = self.affected[k] as usize;
            let new = llg::score_boxes(&mut self.scratch, &self.layer_boxes[l]);
            total = total - self.layer_obj[l] + new;
            self.proposed.push((l as u32, new));
        }
        self.proposed_total = total;
        total
    }

    /// Keeps the staged proposal (the swap was accepted).
    fn commit(&mut self) {
        for &(l, score) in &self.proposed {
            self.layer_obj[l as usize] = score;
        }
        self.total = self.proposed_total;
    }

    /// Restores the cached requests to the committed placement (the swap
    /// was rejected).
    fn revert(&mut self) {
        for &(l, gi, side, old_cell, old_box) in self.patches.iter().rev() {
            let req = &mut self.layer_requests[l as usize][gi as usize];
            if side {
                req.b = old_cell;
            } else {
                req.a = old_cell;
            }
            self.layer_boxes[l as usize][gi as usize] = old_box;
        }
        self.patches.clear();
    }
}

/// Counts oversized LLGs (the raw Table 1 "# of LLG's (size > 3)" number)
/// across *all* CX layers of the circuit under `placement`.
pub fn count_oversized_llgs(circuit: &Circuit, placement: &Placement) -> u64 {
    let profile = ParallelismProfile::analyze(circuit);
    let mut total = 0u64;
    for layer in profile.layers() {
        let requests: Vec<CxRequest> = layer
            .iter()
            .filter(|&&g| circuit.gate(g).is_two_qubit())
            .map(|&g| {
                let (a, b) = circuit.gate(g).pair().expect("filtered to CX");
                CxRequest::new(g, placement.cell_of(a), placement.cell_of(b))
            })
            .collect();
        total += llg::count_oversized(&requests) as u64;
    }
    total
}

/// Refines `initial` by simulated annealing on the LLG objective. Swap
/// proposals exchange two random qubits' tiles; acceptance follows the
/// Metropolis rule with geometric cooling. Deterministic for a fixed
/// config.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::ising::ising;
/// use autobraid_lattice::Grid;
/// use autobraid_placement::annealing::{anneal, AnnealConfig};
/// use autobraid_placement::place::Placement;
///
/// let c = ising(9, 2)?;
/// let grid = Grid::with_capacity_for(9);
/// let start = Placement::row_major(&grid, 9);
/// let outcome = anneal(&c, &grid, start, &AnnealConfig { iterations: 100, ..Default::default() });
/// assert!(outcome.final_objective <= outcome.initial_objective);
/// # Ok::<(), autobraid_circuit::CircuitError>(())
/// ```
pub fn anneal(
    circuit: &Circuit,
    grid: &Grid,
    initial: Placement,
    config: &AnnealConfig,
) -> AnnealOutcome {
    debug_assert!(
        initial.is_consistent(grid),
        "inconsistent starting placement"
    );
    let _span = telemetry::fine_span("anneal");
    let layers = sample_layers(circuit, config.max_sampled_layers);
    let initial_objective = llg_objective(circuit, &layers, &initial);
    let n = circuit.num_qubits();

    // Nothing to optimize: no layer can host an oversized LLG.
    if layers.is_empty() || n < 2 {
        return AnnealOutcome {
            placement: initial,
            initial_objective,
            final_objective: initial_objective,
            accepted_moves: 0,
        };
    }

    let mut rng = Rng64::seed_from_u64(config.seed);
    let mut current = initial.clone();
    let mut current_obj = initial_objective;
    // Incremental objective: re-score only the layers a swap touches.
    // Reference mode falls back to the full recompute each proposal; the
    // two agree exactly (debug-asserted below), so the RNG stream — and
    // therefore the whole anneal — is identical either way.
    let use_incremental = !telemetry::reference_mode();
    let mut cache = ObjectiveCache::new(circuit, &layers, &current, n as usize);
    debug_assert_eq!(
        cache.total, initial_objective,
        "cached objective diverged from llg_objective at start"
    );
    let mut best = initial;
    let mut best_obj = initial_objective;
    let mut temperature = config.initial_temperature;
    let mut accepted = 0usize;

    // Effort auto-scaling: one objective evaluation costs roughly
    // Σ layer_len² box tests; cap the total work so huge circuits don't
    // spend minutes annealing (compilation stays a small fraction of
    // execution, §4.2).
    let cost_per_iteration: u64 = layers
        .iter()
        .map(|l| (l.len() * l.len()) as u64)
        .sum::<u64>()
        .max(1);
    let budget: u64 = 20_000_000;
    let iterations = config
        .iterations
        .min(((budget / cost_per_iteration) as usize).max(50));

    let mut proposals = 0usize;
    for _ in 0..iterations {
        if best_obj == 0 {
            break; // cannot be reduced anymore
        }
        proposals += 1;
        let a: QubitId = rng.gen_range(0..n);
        let mut b: QubitId = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        current.swap_qubits(a, b);
        let obj = if use_incremental {
            let incremental = cache.propose(a, b, &current);
            debug_assert_eq!(
                incremental,
                llg_objective(circuit, &layers, &current),
                "incremental objective diverged on swap ({a}, {b})"
            );
            incremental
        } else {
            llg_objective(circuit, &layers, &current)
        };
        let delta = obj as f64 - current_obj as f64;
        let accept = delta <= 0.0
            || (temperature > 1e-12 && rng.gen_bool((-delta / temperature).exp().min(1.0)));
        if accept {
            if use_incremental {
                cache.commit();
            }
            current_obj = obj;
            accepted += 1;
            if obj < best_obj {
                best_obj = obj;
                best = current.clone();
            }
            if telemetry::fine_metrics_enabled() {
                telemetry::observe("placement.anneal.objective", obj as f64);
            }
            if telemetry::fine_decisions_enabled() {
                telemetry::decision(&telemetry::Decision::AnnealAccept {
                    delta,
                    temp: temperature,
                });
            }
        } else {
            current.swap_qubits(a, b); // undo
            if use_incremental {
                cache.revert();
            }
        }
        temperature *= config.cooling;
    }

    // Per-anneal profiling detail: skipped for always-on ambient
    // recorders (see `telemetry::fine_metrics_enabled`).
    if telemetry::fine_metrics_enabled() {
        telemetry::counter("placement.anneal.proposals", proposals as u64);
        telemetry::counter("placement.anneal.accepted", accepted as u64);
        telemetry::counter("placement.anneal.initial_objective", initial_objective);
        telemetry::counter("placement.anneal.final_objective", best_obj);
        if proposals > 0 {
            telemetry::observe(
                "placement.anneal.acceptance_rate",
                accepted as f64 / proposals as f64,
            );
        }
    }

    AnnealOutcome {
        placement: best,
        initial_objective,
        final_objective: best_obj,
        accepted_moves: accepted,
    }
}

/// The seed of chain `chain` in a portfolio run. Chain 0 keeps the base
/// seed so a 1-chain portfolio is bit-identical to [`anneal`]; later
/// chains decorrelate through a splitmix64 finalizer.
fn chain_seed(base: u64, chain: usize) -> u64 {
    if chain == 0 {
        return base;
    }
    let mut z = base.wrapping_add((chain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs [`anneal`] as a seeded multi-chain portfolio: `config.chains`
/// independent chains (chain 0 uses `config.seed` verbatim) explored
/// with up to `threads` worker threads, keeping the chain with the best
/// final objective — ties break toward the lowest chain index, so the
/// result is a pure function of the config, independent of `threads`
/// and of scheduling order. With `chains <= 1` this *is* [`anneal`].
///
/// Worker threads propagate the caller's telemetry recorder
/// ([`telemetry::current`]), so chain metrics aggregate into one
/// snapshot.
pub fn anneal_portfolio(
    circuit: &Circuit,
    grid: &Grid,
    initial: Placement,
    config: &AnnealConfig,
    threads: usize,
) -> AnnealOutcome {
    if config.chains <= 1 {
        return anneal(circuit, grid, initial, config);
    }
    let _span = telemetry::fine_span("anneal_portfolio");
    let chains = config.chains;
    let mut outcomes: Vec<Option<AnnealOutcome>> = vec![None; chains];
    if threads <= 1 {
        for (chain, slot) in outcomes.iter_mut().enumerate() {
            let chain_config = AnnealConfig {
                seed: chain_seed(config.seed, chain),
                chains: 1,
                ..*config
            };
            *slot = Some(anneal(circuit, grid, initial.clone(), &chain_config));
        }
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let slots: Vec<Mutex<Option<AnnealOutcome>>> =
            (0..chains).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let recorder = telemetry::current();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(chains) {
                let recorder = recorder.clone();
                let (next, slots, initial) = (&next, &slots, &initial);
                scope.spawn(move || {
                    let _guard = recorder.map(telemetry::install);
                    loop {
                        let chain = next.fetch_add(1, Ordering::Relaxed);
                        if chain >= chains {
                            break;
                        }
                        let chain_config = AnnealConfig {
                            seed: chain_seed(config.seed, chain),
                            chains: 1,
                            ..*config
                        };
                        let outcome = anneal(circuit, grid, initial.clone(), &chain_config);
                        *slots[chain].lock().expect("chain slot never poisoned") = Some(outcome);
                    }
                });
            }
        });
        for (slot, out) in outcomes.iter_mut().zip(slots) {
            *slot = out.into_inner().expect("chain slot never poisoned");
        }
    }
    telemetry::counter("placement.portfolio.chains", chains as u64);
    let best = outcomes
        .into_iter()
        .map(|o| o.expect("every chain ran"))
        .enumerate()
        .min_by_key(|(chain, o)| (o.final_objective, *chain))
        .map(|(_, o)| o)
        .expect("chains >= 2");
    telemetry::counter("placement.portfolio.best_objective", best.final_objective);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobraid_circuit::generators::{ising::ising, qft::qft};

    #[test]
    fn never_worsens_objective() {
        let c = qft(16).unwrap();
        let grid = Grid::with_capacity_for(16);
        let start = Placement::row_major(&grid, 16);
        let out = anneal(&c, &grid, start, &AnnealConfig::default());
        assert!(out.final_objective <= out.initial_objective);
        assert!(out.placement.is_consistent(&grid));
    }

    #[test]
    fn reduces_oversized_llgs_for_perturbed_ising() {
        // Start from a near-perfect serpentine layout with two qubits
        // exchanged: SA should repair the damage (or at least part of it).
        let c = ising(16, 1).unwrap();
        let grid = Grid::with_capacity_for(16);
        let mut start = crate::linear::place_along_serpentine(&grid, &(0..16).collect::<Vec<_>>());
        start.swap_qubits(2, 13);
        let layers = sample_layers(&c, 8);
        let damaged = llg_objective(&c, &layers, &start);
        assert!(damaged > 0, "the perturbation must create oversized LLGs");
        let out = anneal(
            &c,
            &grid,
            start,
            &AnnealConfig {
                iterations: 1500,
                ..Default::default()
            },
        );
        assert!(
            out.final_objective < out.initial_objective,
            "SA should repair a perturbed chain: {} -> {}",
            out.initial_objective,
            out.final_objective
        );
    }

    #[test]
    fn serial_circuit_is_a_noop() {
        // BV-like circuit: no layer has ≥ 4 CXs, nothing to sample.
        let mut c = Circuit::new(6);
        for q in 0..5 {
            c.cx(q, 5);
        }
        let grid = Grid::with_capacity_for(6);
        let start = Placement::row_major(&grid, 6);
        let out = anneal(&c, &grid, start.clone(), &AnnealConfig::default());
        assert_eq!(out.placement, start);
        assert_eq!(out.accepted_moves, 0);
        assert_eq!(out.initial_objective, 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let c = qft(12).unwrap();
        let grid = Grid::with_capacity_for(12);
        let cfg = AnnealConfig {
            iterations: 200,
            ..Default::default()
        };
        let o1 = anneal(&c, &grid, Placement::row_major(&grid, 12), &cfg);
        let o2 = anneal(&c, &grid, Placement::row_major(&grid, 12), &cfg);
        assert_eq!(o1.placement, o2.placement);
        assert_eq!(o1.final_objective, o2.final_objective);
    }

    #[test]
    fn portfolio_with_one_chain_is_anneal() {
        let c = qft(12).unwrap();
        let grid = Grid::with_capacity_for(12);
        let cfg = AnnealConfig {
            iterations: 150,
            ..Default::default()
        };
        let plain = anneal(&c, &grid, Placement::row_major(&grid, 12), &cfg);
        let portfolio = anneal_portfolio(&c, &grid, Placement::row_major(&grid, 12), &cfg, 4);
        assert_eq!(plain, portfolio);
    }

    #[test]
    fn portfolio_is_thread_invariant() {
        let c = qft(14).unwrap();
        let grid = Grid::with_capacity_for(14);
        let cfg = AnnealConfig {
            iterations: 150,
            chains: 4,
            ..Default::default()
        };
        let serial = anneal_portfolio(&c, &grid, Placement::row_major(&grid, 14), &cfg, 1);
        let threaded = anneal_portfolio(&c, &grid, Placement::row_major(&grid, 14), &cfg, 3);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn portfolio_never_loses_to_its_first_chain() {
        let c = qft(16).unwrap();
        let grid = Grid::with_capacity_for(16);
        let single = AnnealConfig {
            iterations: 200,
            ..Default::default()
        };
        let multi = AnnealConfig {
            chains: 4,
            ..single
        };
        let one = anneal(&c, &grid, Placement::row_major(&grid, 16), &single);
        let best = anneal_portfolio(&c, &grid, Placement::row_major(&grid, 16), &multi, 2);
        assert!(best.final_objective <= one.final_objective);
    }

    #[test]
    fn incremental_anneal_is_byte_identical_to_reference() {
        // The cached-delta objective must leave the whole anneal — RNG
        // stream, accepted moves, final placement — bit-identical to the
        // recompute-every-proposal reference.
        for circuit in [qft(14).unwrap(), ising(16, 2).unwrap()] {
            let grid = Grid::with_capacity_for(16);
            let n = circuit.num_qubits();
            let cfg = AnnealConfig {
                iterations: 300,
                ..Default::default()
            };
            let fast = anneal(&circuit, &grid, Placement::row_major(&grid, n), &cfg);
            let was = telemetry::set_reference_mode(true);
            let reference = anneal(&circuit, &grid, Placement::row_major(&grid, n), &cfg);
            telemetry::set_reference_mode(was);
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn chain_seeds_are_distinct_and_stable() {
        let base = 0xB81D;
        assert_eq!(chain_seed(base, 0), base);
        let seeds: Vec<u64> = (0..8).map(|i| chain_seed(base, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            seeds.len(),
            "derived seeds collide: {seeds:?}"
        );
    }

    #[test]
    fn count_oversized_matches_objective_direction() {
        let c = qft(16).unwrap();
        let grid = Grid::with_capacity_for(16);
        let start = Placement::row_major(&grid, 16);
        let before = count_oversized_llgs(&c, &start);
        let out = anneal(&c, &grid, start, &AnnealConfig::default());
        let after = count_oversized_llgs(&c, &out.placement);
        // The full-circuit count generally tracks the sampled objective.
        assert!(after <= before + 2, "{after} vs {before}");
    }
}
