//! Qubit coupling graph: two qubits are adjacent iff a two-qubit gate acts
//! on them; edge weights count interactions.

use autobraid_circuit::{Circuit, QubitId};
use std::collections::BTreeMap;

/// Weighted interaction graph of a circuit's two-qubit gates.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::Circuit;
/// use autobraid_placement::coupling::CouplingGraph;
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1).cx(0, 1).cx(1, 2);
/// let g = CouplingGraph::of(&c);
/// assert_eq!(g.weight(0, 1), 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_linear()); // path 0-1-2
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    num_qubits: u32,
    weights: BTreeMap<(QubitId, QubitId), u64>,
    adjacency: Vec<Vec<QubitId>>,
}

impl CouplingGraph {
    /// Builds the coupling graph of `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut weights: BTreeMap<(QubitId, QubitId), u64> = BTreeMap::new();
        for gate in circuit.gates() {
            if let Some((a, b)) = gate.pair() {
                let key = (a.min(b), a.max(b));
                *weights.entry(key).or_insert(0) += 1;
            }
        }
        let mut adjacency = vec![Vec::new(); circuit.num_qubits() as usize];
        for &(a, b) in weights.keys() {
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
        CouplingGraph {
            num_qubits: circuit.num_qubits(),
            weights,
            adjacency,
        }
    }

    /// Number of qubits (nodes), including isolated ones.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of distinct interacting pairs (edges).
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// Interaction count between `a` and `b` (0 when they never interact).
    pub fn weight(&self, a: QubitId, b: QubitId) -> u64 {
        self.weights
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or(0)
    }

    /// Distinct interaction partners of `q`.
    pub fn neighbors(&self, q: QubitId) -> &[QubitId] {
        &self.adjacency[q as usize]
    }

    /// Number of distinct partners of `q`.
    pub fn degree(&self, q: QubitId) -> usize {
        self.adjacency[q as usize].len()
    }

    /// Maximum degree over all qubits.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over `(a, b, weight)` edges with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (QubitId, QubitId, u64)> + '_ {
        self.weights.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// Whether every qubit has degree ≤ 2 — the "special graphs" case the
    /// paper optimizes with a dedicated linear layout (paths and cycles,
    /// e.g. the 1-D Ising model).
    pub fn is_linear(&self) -> bool {
        self.max_degree() <= 2
    }

    /// Extracts the qubit ordering along a degree-≤2 coupling graph:
    /// concatenated path traversals (cycles are cut at their smallest
    /// node). Returns `None` if any qubit has degree > 2.
    pub fn linear_order(&self) -> Option<Vec<QubitId>> {
        if !self.is_linear() {
            return None;
        }
        let n = self.num_qubits as usize;
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        // Path endpoints first (degree ≤ 1), then cycle cuts, then isolated.
        let mut starts: Vec<QubitId> = (0..self.num_qubits).collect();
        starts.sort_by_key(|&q| (self.degree(q), q));
        for start in starts {
            if visited[start as usize] {
                continue;
            }
            let mut current = start;
            visited[current as usize] = true;
            order.push(current);
            loop {
                let next = self
                    .neighbors(current)
                    .iter()
                    .copied()
                    .find(|&m| !visited[m as usize]);
                match next {
                    Some(m) => {
                        visited[m as usize] = true;
                        order.push(m);
                        current = m;
                    }
                    None => break,
                }
            }
        }
        Some(order)
    }

    /// Fraction of total interaction weight between qubit pairs — used by
    /// reports.
    pub fn total_weight(&self) -> u64 {
        self.weights.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobraid_circuit::generators::{ising::ising, qft::qft};

    #[test]
    fn weights_accumulate() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 0).cz(2, 3).h(0);
        let g = CouplingGraph::of(&c);
        assert_eq!(g.weight(0, 1), 2, "direction-insensitive");
        assert_eq!(g.weight(2, 3), 1);
        assert_eq!(g.weight(0, 2), 0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.total_weight(), 3);
    }

    #[test]
    fn ising_is_linear() {
        let g = CouplingGraph::of(&ising(12, 2).unwrap());
        assert!(g.is_linear());
        let order = g.linear_order().unwrap();
        assert_eq!(order.len(), 12);
        // Consecutive qubits in the order are coupled.
        for w in order.windows(2) {
            assert!(g.weight(w[0], w[1]) > 0, "{w:?} not coupled");
        }
    }

    #[test]
    fn qft_is_complete_graph() {
        let g = CouplingGraph::of(&qft(8).unwrap());
        assert_eq!(g.edge_count(), 28);
        assert_eq!(g.max_degree(), 7);
        assert!(!g.is_linear());
        assert!(g.linear_order().is_none());
    }

    #[test]
    fn cycle_coupling_linearizes() {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.cx(q, (q + 1) % 5);
        }
        let g = CouplingGraph::of(&c);
        assert!(g.is_linear());
        let order = g.linear_order().unwrap();
        assert_eq!(order.len(), 5);
        // A cut cycle keeps all but one adjacency consecutive.
        let adjacent_pairs = order
            .windows(2)
            .filter(|w| g.weight(w[0], w[1]) > 0)
            .count();
        assert_eq!(adjacent_pairs, 4);
    }

    #[test]
    fn isolated_qubits_included() {
        let mut c = Circuit::new(5);
        c.cx(0, 1);
        let g = CouplingGraph::of(&c);
        assert!(g.is_linear());
        let order = g.linear_order().unwrap();
        assert_eq!(order.len(), 5, "isolated qubits still get positions");
    }

    #[test]
    fn empty_circuit_graph() {
        let g = CouplingGraph::of(&Circuit::new(3));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.linear_order().unwrap(), vec![0, 1, 2]);
    }
}
