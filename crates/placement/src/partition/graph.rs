//! Weighted undirected graph used by the multilevel partitioner.

/// An undirected graph with vertex and edge weights, stored as adjacency
/// lists. Vertices are `0..n`.
///
/// # Examples
///
/// ```
/// use autobraid_placement::partition::graph::PartGraph;
///
/// let g = PartGraph::from_edges(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 3)]);
/// assert_eq!(g.num_vertices(), 4);
/// // Cutting the middle edge costs 1; cutting elsewhere costs 3.
/// assert_eq!(g.edge_cut(&[false, false, true, true]), 1);
/// assert_eq!(g.edge_cut(&[false, true, true, true]), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartGraph {
    vertex_weight: Vec<u64>,
    adjacency: Vec<Vec<(usize, u64)>>,
}

impl PartGraph {
    /// Creates an edgeless graph with `n` unit-weight vertices.
    pub fn new(n: usize) -> Self {
        PartGraph {
            vertex_weight: vec![1; n],
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from weighted edges (`u < v` not required; parallel
    /// edges accumulate).
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn from_edges(n: usize, edges: &[(usize, usize, u64)]) -> Self {
        let mut g = PartGraph::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Adds (or accumulates onto) an edge.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize, w: u64) {
        assert_ne!(u, v, "self-loop at {u}");
        assert!(u < self.num_vertices() && v < self.num_vertices());
        for &mut (m, ref mut weight) in &mut self.adjacency[u] {
            if m == v {
                *weight += w;
                for &mut (m2, ref mut w2) in &mut self.adjacency[v] {
                    if m2 == u {
                        *w2 += w;
                    }
                }
                return;
            }
        }
        self.adjacency[u].push((v, w));
        self.adjacency[v].push((u, w));
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weight.len()
    }

    /// Weight of vertex `v` (1 for original qubits; coarse vertices carry
    /// the summed weight of the fine vertices they represent).
    pub fn vertex_weight(&self, v: usize) -> u64 {
        self.vertex_weight[v]
    }

    /// Sets a vertex weight (used during coarsening).
    pub fn set_vertex_weight(&mut self, v: usize, w: u64) {
        self.vertex_weight[v] = w;
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weight.iter().sum()
    }

    /// Weighted neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adjacency[v]
    }

    /// Degree (distinct neighbours) of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Total weight of edges crossing the bisection `side` (vertex `v` is
    /// on side `side[v]`).
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != num_vertices()`.
    pub fn edge_cut(&self, side: &[bool]) -> u64 {
        assert_eq!(side.len(), self.num_vertices());
        let mut cut = 0;
        for v in 0..self.num_vertices() {
            for &(m, w) in &self.adjacency[v] {
                if v < m && side[v] != side[m] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Sum of vertex weights on side `false` of the bisection.
    pub fn side_weight(&self, side: &[bool]) -> u64 {
        (0..self.num_vertices())
            .filter(|&v| !side[v])
            .map(|v| self.vertex_weight[v])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = PartGraph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 0, 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[(1, 5)]);
        assert_eq!(g.neighbors(1), &[(0, 5)]);
    }

    #[test]
    fn cut_and_weights() {
        let g = PartGraph::from_edges(4, &[(0, 1, 1), (1, 2, 5), (2, 3, 1), (0, 3, 2)]);
        assert_eq!(g.edge_cut(&[false, false, true, true]), 5 + 2);
        assert_eq!(g.edge_cut(&[false, false, false, false]), 0);
        assert_eq!(g.total_vertex_weight(), 4);
        assert_eq!(g.side_weight(&[false, false, true, true]), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = PartGraph::new(2);
        g.add_edge(1, 1, 1);
    }

    #[test]
    fn empty_graph() {
        let g = PartGraph::new(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edge_cut(&[]), 0);
        assert_eq!(g.total_vertex_weight(), 0);
    }
}
