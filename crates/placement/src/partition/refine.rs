//! Fiduccia–Mattheyses-style bisection refinement.

use crate::partition::bisect::Balance;
use crate::partition::graph::PartGraph;

/// Gain of moving `v` to the other side: external minus internal edge
/// weight (positive gains reduce the cut).
fn gain(graph: &PartGraph, side: &[bool], v: usize) -> i64 {
    let mut g = 0i64;
    for &(m, w) in graph.neighbors(v) {
        if side[m] == side[v] {
            g -= w as i64;
        } else {
            g += w as i64;
        }
    }
    g
}

/// One FM pass: tentatively move every vertex once in best-gain-first
/// order (respecting `balance`), then roll back to the best prefix.
/// Returns the cut improvement achieved (0 when the pass found nothing).
pub fn fm_pass(graph: &PartGraph, side: &mut [bool], balance: Balance) -> u64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0;
    }
    let initial_cut = graph.edge_cut(side);
    let mut locked = vec![false; n];
    let mut weight0: u64 = graph.side_weight(side);
    let mut current_cut = initial_cut as i64;
    let mut best_cut = current_cut;
    let mut moves: Vec<usize> = Vec::new();
    let mut best_prefix = 0;

    for _ in 0..n {
        // Pick the best movable vertex under the balance constraint.
        let candidate = (0..n)
            .filter(|&v| !locked[v])
            .filter(|&v| {
                let w0_after = if side[v] {
                    weight0 + graph.vertex_weight(v)
                } else {
                    weight0 - graph.vertex_weight(v)
                };
                balance.admits(w0_after)
            })
            .max_by_key(|&v| (gain(graph, side, v), std::cmp::Reverse(v)));
        let Some(v) = candidate else { break };
        let g = gain(graph, side, v);
        current_cut -= g;
        weight0 = if side[v] {
            weight0 + graph.vertex_weight(v)
        } else {
            weight0 - graph.vertex_weight(v)
        };
        side[v] = !side[v];
        locked[v] = true;
        moves.push(v);
        if current_cut < best_cut {
            best_cut = current_cut;
            best_prefix = moves.len();
        }
    }
    // Roll back every move past the best prefix.
    for &v in &moves[best_prefix..] {
        side[v] = !side[v];
    }
    debug_assert_eq!(
        graph.edge_cut(side) as i64,
        best_cut.min(initial_cut as i64)
    );
    initial_cut - graph.edge_cut(side)
}

/// Runs FM passes until a pass yields no improvement (bounded by
/// `max_passes`).
pub fn refine(graph: &PartGraph, side: &mut [bool], balance: Balance, max_passes: usize) {
    for _ in 0..max_passes {
        if fm_pass(graph, side, balance) == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::bisect::grow_bisection;

    #[test]
    fn repairs_a_bad_split() {
        // Two cliques joined by one light edge; start with a split that
        // cuts a clique.
        let edges = vec![
            (0, 1, 10),
            (0, 2, 10),
            (1, 2, 10),
            (3, 4, 10),
            (3, 5, 10),
            (4, 5, 10),
            (2, 3, 1),
        ];
        let g = PartGraph::from_edges(6, &edges);
        let mut side = vec![false, false, true, true, true, true]; // cuts clique A
        assert_eq!(g.edge_cut(&side), 20);
        refine(&g, &mut side, Balance::even(6, 0), 8);
        assert_eq!(g.edge_cut(&side), 1, "FM finds the natural cut");
        assert_eq!(g.side_weight(&side), 3);
    }

    #[test]
    fn respects_balance() {
        // A star wants everything on one side; balance forbids it.
        let edges: Vec<(usize, usize, u64)> = (1..6).map(|v| (0, v, 1)).collect();
        let g = PartGraph::from_edges(6, &edges);
        let mut side = vec![false, false, false, true, true, true];
        refine(&g, &mut side, Balance::even(6, 0), 8);
        assert_eq!(g.side_weight(&side), 3, "balance held");
    }

    #[test]
    fn never_worsens_the_cut() {
        use autobraid_telemetry::Rng64;
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..20 {
            let n = 20;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.2) {
                        edges.push((u, v, rng.gen_range(1..5u64)));
                    }
                }
            }
            let g = PartGraph::from_edges(n, &edges);
            let mut side = grow_bisection(&g, Balance::even(n as u64, 1));
            let before = g.edge_cut(&side);
            refine(&g, &mut side, Balance::even(n as u64, 1), 4);
            assert!(g.edge_cut(&side) <= before);
        }
    }

    #[test]
    fn empty_graph_noop() {
        let g = PartGraph::new(0);
        let mut side: Vec<bool> = Vec::new();
        assert_eq!(fm_pass(&g, &mut side, Balance::even(0, 0)), 0);
    }
}
