//! Heavy-edge matching and graph coarsening (the multilevel "V-cycle"
//! descent, after METIS).

use crate::partition::graph::PartGraph;

/// A maximal matching: `partner[v]` is `Some(u)` iff `v` is matched to
/// `u` (symmetric).
pub type Matching = Vec<Option<usize>>;

/// Heavy-edge matching: visit vertices in ascending-degree order and match
/// each unmatched vertex with its heaviest unmatched neighbour. Degree
/// ordering keeps low-connectivity vertices from being stranded, the
/// standard METIS heuristic.
pub fn heavy_edge_matching(graph: &PartGraph) -> Matching {
    let n = graph.num_vertices();
    let mut partner: Matching = vec![None; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (graph.degree(v), v));
    for v in order {
        if partner[v].is_some() {
            continue;
        }
        let best = graph
            .neighbors(v)
            .iter()
            .filter(|&&(m, _)| partner[m].is_none() && m != v)
            .max_by_key(|&&(m, w)| (w, std::cmp::Reverse(m)))
            .map(|&(m, _)| m);
        if let Some(m) = best {
            partner[v] = Some(m);
            partner[m] = Some(v);
        }
    }
    partner
}

/// Contracts matched pairs into single coarse vertices.
///
/// Returns the coarse graph and the fine → coarse vertex map. Coarse
/// vertex weights are the sums of their fine constituents; edges between
/// coarse vertices accumulate all fine edge weights (internal matched
/// edges disappear).
pub fn coarsen(graph: &PartGraph, matching: &Matching) -> (PartGraph, Vec<usize>) {
    let n = graph.num_vertices();
    let mut fine_to_coarse = vec![usize::MAX; n];
    let mut next = 0;
    for v in 0..n {
        if fine_to_coarse[v] != usize::MAX {
            continue;
        }
        fine_to_coarse[v] = next;
        if let Some(m) = matching[v] {
            fine_to_coarse[m] = next;
        }
        next += 1;
    }
    let mut coarse = PartGraph::new(next);
    for v in 0..next {
        coarse.set_vertex_weight(v, 0);
    }
    for v in 0..n {
        let cv = fine_to_coarse[v];
        coarse.set_vertex_weight(cv, coarse.vertex_weight(cv) + graph.vertex_weight(v));
        for &(m, w) in graph.neighbors(v) {
            let cm = fine_to_coarse[m];
            if v < m && cv != cm {
                coarse.add_edge(cv, cm, w);
            }
        }
    }
    (coarse, fine_to_coarse)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> PartGraph {
        PartGraph::from_edges(4, &[(0, 1, 5), (1, 2, 1), (2, 3, 5)])
    }

    #[test]
    fn matching_is_symmetric_and_valid() {
        let g = path4();
        let m = heavy_edge_matching(&g);
        for v in 0..4 {
            if let Some(u) = m[v] {
                assert_eq!(m[u], Some(v), "asymmetric at {v}");
                assert_ne!(u, v);
                assert!(
                    g.neighbors(v).iter().any(|&(x, _)| x == u),
                    "non-edge matched"
                );
            }
        }
    }

    #[test]
    fn heavy_edges_preferred() {
        let g = path4();
        let m = heavy_edge_matching(&g);
        // Heavy edges (0,1) and (2,3) should be matched, not the light (1,2).
        assert_eq!(m[0], Some(1));
        assert_eq!(m[2], Some(3));
    }

    #[test]
    fn coarsen_halves_path() {
        let g = path4();
        let m = heavy_edge_matching(&g);
        let (coarse, map) = coarsen(&g, &m);
        assert_eq!(coarse.num_vertices(), 2);
        assert_eq!(coarse.total_vertex_weight(), 4);
        assert_eq!(map[0], map[1]);
        assert_eq!(map[2], map[3]);
        assert_ne!(map[0], map[2]);
        // The surviving edge carries the light middle weight.
        assert_eq!(coarse.neighbors(map[0]), &[(map[2], 1)]);
    }

    #[test]
    fn isolated_vertices_survive() {
        let g = PartGraph::new(3);
        let m = heavy_edge_matching(&g);
        assert!(m.iter().all(Option::is_none));
        let (coarse, map) = coarsen(&g, &m);
        assert_eq!(coarse.num_vertices(), 3);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn coarse_weights_accumulate() {
        let mut g = PartGraph::from_edges(2, &[(0, 1, 1)]);
        g.set_vertex_weight(0, 3);
        g.set_vertex_weight(1, 4);
        let m = heavy_edge_matching(&g);
        let (coarse, _) = coarsen(&g, &m);
        assert_eq!(coarse.num_vertices(), 1);
        assert_eq!(coarse.vertex_weight(0), 7);
    }
}
