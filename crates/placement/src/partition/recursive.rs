//! The multilevel V-cycle and recursive k-way partitioning — the in-house
//! METIS substitute (see DESIGN.md §3).

use crate::partition::bisect::{grow_bisection, Balance};
use crate::partition::coarsen::{coarsen, heavy_edge_matching};
use crate::partition::graph::PartGraph;
use crate::partition::refine::refine;

/// Coarsest graph size at which we stop descending and bisect directly.
const COARSE_LIMIT: usize = 24;

/// FM passes per uncoarsening level.
const REFINE_PASSES: usize = 6;

/// Multilevel bisection: coarsen with heavy-edge matching until the graph
/// is small, grow an initial bisection, then project back up refining with
/// FM at every level.
///
/// The balance constraint is honoured at every level (vertex weights are
/// conserved by coarsening).
///
/// # Examples
///
/// ```
/// use autobraid_placement::partition::graph::PartGraph;
/// use autobraid_placement::partition::bisect::Balance;
/// use autobraid_placement::partition::recursive::bisect_multilevel;
///
/// // Two 8-cliques joined by a single edge.
/// let mut edges = Vec::new();
/// for base in [0, 8] {
///     for u in 0..8 {
///         for v in (u + 1)..8 {
///             edges.push((base + u, base + v, 10));
///         }
///     }
/// }
/// edges.push((7, 8, 1));
/// let g = PartGraph::from_edges(16, &edges);
/// let side = bisect_multilevel(&g, Balance::even(16, 0));
/// assert_eq!(g.edge_cut(&side), 1);
/// ```
pub fn bisect_multilevel(graph: &PartGraph, balance: Balance) -> Vec<bool> {
    let mut side = bisect_multilevel_inner(graph, balance);
    // Growth and refinement are balance-aware but can land one vertex off
    // at coarse granularities; repair cheaply (exact for unit weights,
    // best-effort otherwise).
    force_balance(graph, &mut side, balance);
    refine(graph, &mut side, balance, 1);
    side
}

fn bisect_multilevel_inner(graph: &PartGraph, balance: Balance) -> Vec<bool> {
    if graph.num_vertices() <= COARSE_LIMIT {
        let mut side = grow_bisection(graph, balance);
        refine(graph, &mut side, balance, REFINE_PASSES);
        return side;
    }
    let matching = heavy_edge_matching(graph);
    let (coarse, fine_to_coarse) = coarsen(graph, &matching);
    // Coarsening stalled (no matchable edges): bisect directly.
    if coarse.num_vertices() == graph.num_vertices() {
        let mut side = grow_bisection(graph, balance);
        refine(graph, &mut side, balance, REFINE_PASSES);
        return side;
    }
    let coarse_side = bisect_multilevel_inner(&coarse, balance);
    let mut side: Vec<bool> = (0..graph.num_vertices())
        .map(|v| coarse_side[fine_to_coarse[v]])
        .collect();
    refine(graph, &mut side, balance, REFINE_PASSES);
    side
}

/// Recursive k-way partition into parts of the given capacities:
/// `capacities[p]` is the maximum vertex weight part `p` may hold. Returns
/// the part index of every vertex.
///
/// This is the shape the grid embedding needs: capacities are grid-region
/// cell counts, which may be unequal when `k` does not divide the grid.
///
/// # Panics
///
/// Panics if capacities cannot hold the total vertex weight.
pub fn partition_with_capacities(graph: &PartGraph, capacities: &[u64]) -> Vec<usize> {
    assert!(!capacities.is_empty(), "need at least one part");
    let total = graph.total_vertex_weight();
    let cap_total: u64 = capacities.iter().sum();
    assert!(
        cap_total >= total,
        "capacities {cap_total} cannot hold weight {total}"
    );
    let mut assignment = vec![0usize; graph.num_vertices()];
    let vertices: Vec<usize> = (0..graph.num_vertices()).collect();
    split(graph, &vertices, capacities, 0, &mut assignment);
    assignment
}

/// Convenience: k equal parts (capacities = ceil(total/k) + slack 1).
pub fn partition(graph: &PartGraph, k: usize) -> Vec<usize> {
    assert!(k > 0, "need at least one part");
    let total = graph.total_vertex_weight();
    let cap = total.div_ceil(k as u64) + 1;
    partition_with_capacities(graph, &vec![cap; k])
}

fn split(
    graph: &PartGraph,
    vertices: &[usize],
    capacities: &[u64],
    first_part: usize,
    assignment: &mut [usize],
) {
    if capacities.len() == 1 {
        for &v in vertices {
            assignment[v] = first_part;
        }
        return;
    }
    // Split capacities in half (by part count); bisect the induced
    // subgraph with matching weight targets.
    let mid = capacities.len() / 2;
    let cap0: u64 = capacities[..mid].iter().sum();
    let cap1: u64 = capacities[mid..].iter().sum();

    let (sub, _to_sub) = induced_subgraph(graph, vertices);
    let weight: u64 = vertices.iter().map(|&v| graph.vertex_weight(v)).sum();
    let balance = Balance::capacities(weight, cap0, cap1);
    let mut side = bisect_multilevel(&sub, balance);
    force_balance(&sub, &mut side, balance);

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] {
            right.push(v);
        } else {
            left.push(v);
        }
    }
    split(graph, &left, &capacities[..mid], first_part, assignment);
    split(
        graph,
        &right,
        &capacities[mid..],
        first_part + mid,
        assignment,
    );
}

/// Guarantees the balance constraint by force: while a side is over
/// capacity, moves its cheapest (least-connected-to-its-side) vertex
/// across. Unit vertex weights make this always terminate inside bounds;
/// it only activates when FM could not quite balance coarse weights.
fn force_balance(graph: &PartGraph, side: &mut [bool], balance: Balance) {
    let cheapest_on = |side: &[bool], s: bool| -> Option<usize> {
        (0..graph.num_vertices())
            .filter(|&v| side[v] == s)
            .min_by_key(|&v| {
                let internal: u64 = graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&(m, _)| side[m] == s)
                    .map(|&(_, w)| w)
                    .sum();
                (internal, v)
            })
    };
    let mut w0 = graph.side_weight(side);
    while w0 > balance.max_side0 {
        let Some(v) = cheapest_on(side, false) else {
            break;
        };
        side[v] = true;
        w0 -= graph.vertex_weight(v);
    }
    while w0 < balance.min_side0 {
        let Some(v) = cheapest_on(side, true) else {
            break;
        };
        side[v] = false;
        w0 += graph.vertex_weight(v);
    }
}

/// Builds the subgraph induced by `vertices` (in their given order) and
/// the original → induced index map.
pub fn induced_subgraph(graph: &PartGraph, vertices: &[usize]) -> (PartGraph, Vec<usize>) {
    let mut to_sub = vec![usize::MAX; graph.num_vertices()];
    for (i, &v) in vertices.iter().enumerate() {
        to_sub[v] = i;
    }
    let mut sub = PartGraph::new(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        sub.set_vertex_weight(i, graph.vertex_weight(v));
        for &(m, w) in graph.neighbors(v) {
            let j = to_sub[m];
            if j != usize::MAX && i < j {
                sub.add_edge(i, j, w);
            }
        }
    }
    (sub, to_sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques(k: usize, bridge: u64) -> PartGraph {
        let mut edges = Vec::new();
        for base in [0, k] {
            for u in 0..k {
                for v in u + 1..k {
                    edges.push((base + u, base + v, 10));
                }
            }
        }
        edges.push((k - 1, k, bridge));
        PartGraph::from_edges(2 * k, &edges)
    }

    #[test]
    fn multilevel_finds_natural_cut_large() {
        let g = two_cliques(40, 1); // 80 vertices: exercises coarsening
        let side = bisect_multilevel(&g, Balance::even(80, 0));
        assert_eq!(g.edge_cut(&side), 1);
        assert_eq!(g.side_weight(&side), 40);
    }

    #[test]
    fn partition_respects_capacities() {
        let g = two_cliques(10, 1);
        let caps = [6, 6, 6, 6];
        let parts = partition_with_capacities(&g, &caps);
        for (p, &cap) in caps.iter().enumerate() {
            let w: u64 = (0..20).filter(|&v| parts[v] == p).count() as u64;
            assert!(w <= cap, "part {p} over capacity: {w}");
        }
        assert_eq!(parts.len(), 20);
    }

    #[test]
    fn partition_k_covers_all_parts_reasonably() {
        // A 4x4 grid graph into 4 parts.
        let mut edges = Vec::new();
        for r in 0..4usize {
            for c in 0..4usize {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    edges.push((v, v + 1, 1));
                }
                if r + 1 < 4 {
                    edges.push((v, v + 4, 1));
                }
            }
        }
        let g = PartGraph::from_edges(16, &edges);
        let parts = partition(&g, 4);
        let mut counts = [0usize; 4];
        for &p in &parts {
            counts[p] += 1;
        }
        for (p, &count) in counts.iter().enumerate() {
            assert!(count >= 2, "part {p} nearly empty: {counts:?}");
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = PartGraph::from_edges(5, &[(0, 1, 2), (1, 2, 3), (3, 4, 1)]);
        let (sub, map) = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.edge_count(), 1, "only (1,2) is internal");
        assert_eq!(map[1], 0);
        assert_eq!(map[0], usize::MAX);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn overfull_capacities_rejected() {
        let g = PartGraph::new(10);
        let _ = partition_with_capacities(&g, &[4, 4]);
    }

    #[test]
    fn singleton_part() {
        let g = PartGraph::new(3);
        let parts = partition_with_capacities(&g, &[3]);
        assert_eq!(parts, vec![0, 0, 0]);
    }
}
