//! Multilevel graph partitioner — the workspace's METIS \[12\] substitute.
//!
//! Pipeline per bisection: heavy-edge matching ([`coarsen`]) descends to a
//! small graph, BFS region growing ([`bisect`]) seeds the split, and FM
//! refinement ([`refine`]) repairs it at every uncoarsening level.
//! [`recursive`] composes bisections into k-way partitions with arbitrary
//! per-part capacities, which is what the grid embedding needs.

pub mod bisect;
pub mod coarsen;
pub mod graph;
pub mod recursive;
pub mod refine;
