//! Initial bisection by BFS region growing, plus balance bounds.

use crate::partition::graph::PartGraph;
use std::collections::VecDeque;

/// Balance constraint for a bisection: side `false` must carry a vertex
/// weight in `[min_side0, max_side0]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Balance {
    /// Minimum total vertex weight on side `false`.
    pub min_side0: u64,
    /// Maximum total vertex weight on side `false`.
    pub max_side0: u64,
}

impl Balance {
    /// An even split with a slack of `tolerance` weight units on either
    /// side.
    pub fn even(total: u64, tolerance: u64) -> Self {
        let half = total / 2;
        Balance {
            min_side0: half.saturating_sub(tolerance),
            max_side0: (half + tolerance).min(total),
        }
    }

    /// Exact capacities: side `false` must hold exactly enough weight to
    /// fill a region of capacity `cap0` given `total` weight and capacity
    /// `cap0 + cap1`. Used when embedding partitions into grid rectangles.
    pub fn capacities(total: u64, cap0: u64, cap1: u64) -> Self {
        assert!(
            cap0 + cap1 >= total,
            "regions too small: {cap0}+{cap1} < {total}"
        );
        Balance {
            min_side0: total.saturating_sub(cap1),
            max_side0: cap0.min(total),
        }
    }

    /// Whether `w0` satisfies the constraint.
    pub fn admits(&self, w0: u64) -> bool {
        (self.min_side0..=self.max_side0).contains(&w0)
    }
}

/// A pseudo-peripheral vertex: run BFS twice from the minimum-degree
/// vertex; the farthest vertex found is a good bisection seed.
fn pseudo_peripheral(graph: &PartGraph) -> usize {
    let n = graph.num_vertices();
    let start = (0..n).min_by_key(|&v| (graph.degree(v), v)).unwrap_or(0);
    let mut far = start;
    for _ in 0..2 {
        let mut dist = vec![usize::MAX; n];
        dist[far] = 0;
        let mut q = VecDeque::from([far]);
        let mut last = far;
        while let Some(v) = q.pop_front() {
            last = v;
            for &(m, _) in graph.neighbors(v) {
                if dist[m] == usize::MAX {
                    dist[m] = dist[v] + 1;
                    q.push_back(m);
                }
            }
        }
        far = last;
    }
    far
}

/// Grows side `false` by BFS from a pseudo-peripheral seed until its
/// weight reaches the balance target, then assigns the rest to side
/// `true`. Disconnected graphs are handled by reseeding.
///
/// The result satisfies `balance` whenever the vertex weights make that
/// possible (unit weights always do; coarse weights may overshoot by one
/// vertex, which the FM refinement pass repairs).
pub fn grow_bisection(graph: &PartGraph, balance: Balance) -> Vec<bool> {
    let n = graph.num_vertices();
    let mut side = vec![true; n];
    if n == 0 {
        return side;
    }
    let target = balance.min_side0.midpoint(balance.max_side0);
    let mut weight0 = 0u64;
    let mut visited = vec![false; n];
    let mut queue = VecDeque::from([pseudo_peripheral(graph)]);
    visited[queue[0]] = true;
    loop {
        let Some(v) = queue.pop_front() else {
            // Disconnected: reseed from any unvisited vertex.
            match (0..n).find(|&v| !visited[v]) {
                Some(seed) if weight0 < target => {
                    visited[seed] = true;
                    queue.push_back(seed);
                    continue;
                }
                _ => break,
            }
        };
        if weight0 >= target {
            break;
        }
        side[v] = false;
        weight0 += graph.vertex_weight(v);
        for &(m, _) in graph.neighbors(v) {
            if !visited[m] {
                visited[m] = true;
                queue.push_back(m);
            }
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_even() {
        let b = Balance::even(10, 1);
        assert!(b.admits(4));
        assert!(b.admits(5));
        assert!(b.admits(6));
        assert!(!b.admits(3));
        assert!(!b.admits(7));
    }

    #[test]
    fn balance_capacities() {
        // 7 qubits into regions of 4 + 4 cells.
        let b = Balance::capacities(7, 4, 4);
        assert_eq!(b.min_side0, 3);
        assert_eq!(b.max_side0, 4);
        assert!(b.admits(3) && b.admits(4));
        assert!(!b.admits(5));
    }

    #[test]
    #[should_panic(expected = "regions too small")]
    fn capacities_reject_overflow() {
        let _ = Balance::capacities(10, 4, 4);
    }

    #[test]
    fn grow_splits_path_contiguously() {
        // Path of 8: growing from an end gives a contiguous prefix.
        let edges: Vec<(usize, usize, u64)> = (0..7).map(|i| (i, i + 1, 1)).collect();
        let g = PartGraph::from_edges(8, &edges);
        let side = grow_bisection(&g, Balance::even(8, 0));
        assert_eq!(g.side_weight(&side), 4);
        assert_eq!(
            g.edge_cut(&side),
            1,
            "a contiguous split cuts exactly one path edge"
        );
    }

    #[test]
    fn grow_handles_disconnected() {
        let g = PartGraph::from_edges(6, &[(0, 1, 1), (2, 3, 1), (4, 5, 1)]);
        let side = grow_bisection(&g, Balance::even(6, 0));
        assert_eq!(g.side_weight(&side), 3);
    }

    #[test]
    fn grow_empty_graph() {
        let g = PartGraph::new(0);
        assert!(grow_bisection(&g, Balance::even(0, 0)).is_empty());
    }
}
