//! Initial placement: embed the coupling-graph partition into the grid.
//!
//! AutoBraid stage 2 (paper Fig. 10): partition the qubit coupling graph
//! so frequently-interacting qubits land in compact grid regions, by
//! recursively bisecting the graph and the grid rectangle in lock-step.

use crate::coupling::CouplingGraph;
use crate::partition::bisect::Balance;
use crate::partition::graph::PartGraph;
use crate::partition::recursive::{bisect_multilevel, induced_subgraph};
use autobraid_circuit::Circuit;
use autobraid_lattice::{Cell, Grid};

use crate::place::Placement;

/// A rectangle of grid cells: rows `r0..r0+rows`, cols `c0..c0+cols`.
#[derive(Debug, Clone, Copy)]
struct Rect {
    r0: u32,
    c0: u32,
    rows: u32,
    cols: u32,
}

impl Rect {
    fn capacity(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    /// Splits along the longer axis into two halves.
    fn split(&self) -> (Rect, Rect) {
        if self.cols >= self.rows {
            let left = self.cols / 2;
            (
                Rect {
                    cols: left,
                    ..*self
                },
                Rect {
                    c0: self.c0 + left,
                    cols: self.cols - left,
                    ..*self
                },
            )
        } else {
            let top = self.rows / 2;
            (
                Rect { rows: top, ..*self },
                Rect {
                    r0: self.r0 + top,
                    rows: self.rows - top,
                    ..*self
                },
            )
        }
    }

    fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        let (r0, c0, rows, cols) = (self.r0, self.c0, self.rows, self.cols);
        (r0..r0 + rows).flat_map(move |r| (c0..c0 + cols).map(move |c| Cell::new(r, c)))
    }
}

/// Computes the partition-guided initial placement of `circuit`'s qubits
/// on `grid` (the paper's "initM"): recursive graph bisection embedded
/// into recursive rectangle bisection.
///
/// # Panics
///
/// Panics if the grid cannot hold the circuit's qubits.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::qft::qft;
/// use autobraid_lattice::Grid;
/// use autobraid_placement::initial::partition_placement;
///
/// let circuit = qft(16)?;
/// let grid = Grid::with_capacity_for(16);
/// let placement = partition_placement(&circuit, &grid);
/// assert_eq!(placement.num_qubits(), 16);
/// # Ok::<(), autobraid_circuit::CircuitError>(())
/// ```
pub fn partition_placement(circuit: &Circuit, grid: &Grid) -> Placement {
    let n = circuit.num_qubits() as usize;
    assert!(
        n <= grid.cell_count(),
        "{n} qubits cannot fit {} tiles",
        grid.cell_count()
    );

    let coupling = CouplingGraph::of(circuit);
    let mut part = PartGraph::new(n);
    for (a, b, w) in coupling.edges() {
        part.add_edge(a as usize, b as usize, w);
    }

    let mut cells: Vec<Option<Cell>> = vec![None; n];
    let all: Vec<usize> = (0..n).collect();
    let root = Rect {
        r0: 0,
        c0: 0,
        rows: grid.cells_per_side(),
        cols: grid.cells_per_side(),
    };
    embed(&part, &all, root, &mut cells);

    let cells: Vec<Cell> = cells
        .into_iter()
        .map(|c| c.expect("every qubit embedded"))
        .collect();
    Placement::from_cells(grid, cells)
}

fn embed(graph: &PartGraph, vertices: &[usize], rect: Rect, out: &mut [Option<Cell>]) {
    debug_assert!(vertices.len() as u64 <= rect.capacity(), "region overfull");
    match vertices {
        [] => {}
        &[v] => {
            out[v] = Some(Cell::new(rect.r0, rect.c0));
        }
        _ if rect.capacity() == vertices.len() as u64 && vertices.len() <= 4 => {
            // Tiny full region: assign in order.
            for (&v, cell) in vertices.iter().zip(rect.cells()) {
                out[v] = Some(cell);
            }
        }
        _ => {
            let (ra, rb) = rect.split();
            let (sub, _) = induced_subgraph(graph, vertices);
            let weight = sub.total_vertex_weight();
            let balance = Balance::capacities(weight, ra.capacity(), rb.capacity());
            let side = bisect_and_fit(&sub, balance);
            let mut left = Vec::new();
            let mut right = Vec::new();
            for (i, &v) in vertices.iter().enumerate() {
                if side[i] {
                    right.push(v);
                } else {
                    left.push(v);
                }
            }
            embed(graph, &left, ra, out);
            embed(graph, &right, rb, out);
        }
    }
}

/// Multilevel bisection hardened to always satisfy the capacity bounds
/// (unit vertex weights make forcing trivial).
fn bisect_and_fit(sub: &PartGraph, balance: Balance) -> Vec<bool> {
    let mut side = bisect_multilevel(sub, balance);
    let mut w0 = sub.side_weight(&side);
    while w0 > balance.max_side0 {
        let v = (0..sub.num_vertices())
            .filter(|&v| !side[v])
            .min_by_key(|&v| internal_weight(sub, &side, v))
            .expect("side 0 non-empty while over capacity");
        side[v] = true;
        w0 -= sub.vertex_weight(v);
    }
    while w0 < balance.min_side0 {
        let v = (0..sub.num_vertices())
            .filter(|&v| side[v])
            .min_by_key(|&v| internal_weight(sub, &side, v))
            .expect("side 1 non-empty while under capacity");
        side[v] = false;
        w0 += sub.vertex_weight(v);
    }
    side
}

fn internal_weight(graph: &PartGraph, side: &[bool], v: usize) -> (u64, usize) {
    let w = graph
        .neighbors(v)
        .iter()
        .filter(|&&(m, _)| side[m] == side[v])
        .map(|&(_, w)| w)
        .sum();
    (w, v)
}

/// Sum over coupled pairs of `weight × Manhattan distance` — the locality
/// score reports use to compare placements (lower is better).
pub fn weighted_distance(circuit: &Circuit, placement: &Placement) -> u64 {
    let coupling = CouplingGraph::of(circuit);
    coupling
        .edges()
        .map(|(a, b, w)| {
            let (ca, cb) = (placement.cell_of(a), placement.cell_of(b));
            w * u64::from(ca.manhattan_distance(cb))
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobraid_circuit::generators::{ising::ising, qaoa::qaoa, qft::qft};

    #[test]
    fn places_every_qubit_consistently() {
        for n in [4u32, 9, 16, 25, 30] {
            let c = qft(n).unwrap();
            let grid = Grid::with_capacity_for(n as usize);
            let p = partition_placement(&c, &grid);
            assert_eq!(p.num_qubits(), n);
            assert!(p.is_consistent(&grid), "n={n}");
        }
    }

    #[test]
    fn non_square_counts_fit() {
        // 7 qubits on a 3x3 grid: two empty tiles.
        let c = qft(7).unwrap();
        let grid = Grid::with_capacity_for(7);
        let p = partition_placement(&c, &grid);
        assert!(p.is_consistent(&grid));
    }

    #[test]
    fn beats_row_major_locality_on_clustered_circuit() {
        // Two interaction clusters; partition placement should keep each
        // cluster compact.
        let mut c = Circuit::new(16);
        for _ in 0..4 {
            for a in 0..8u32 {
                for b in a + 1..8 {
                    c.cx(a, b);
                    c.cx(a + 8, b + 8);
                }
            }
        }
        // Interleave the clusters so row-major is bad.
        let shuffled: Vec<autobraid_circuit::Gate> = c
            .gates()
            .iter()
            .map(|g| g.map_qubits(|q| if q % 2 == 0 { q / 2 } else { 8 + q / 2 }))
            .collect();
        let c = Circuit::from_gates(16, shuffled).unwrap();
        let grid = Grid::with_capacity_for(16);
        let partitioned = partition_placement(&c, &grid);
        let naive = Placement::row_major(&grid, 16);
        assert!(
            weighted_distance(&c, &partitioned) < weighted_distance(&c, &naive),
            "partitioning should improve locality: {} vs {}",
            weighted_distance(&c, &partitioned),
            weighted_distance(&c, &naive)
        );
    }

    #[test]
    fn ising_chain_stays_fairly_local() {
        let c = ising(25, 1).unwrap();
        let grid = Grid::with_capacity_for(25);
        let p = partition_placement(&c, &grid);
        let per_edge =
            weighted_distance(&c, &p) as f64 / CouplingGraph::of(&c).total_weight() as f64;
        assert!(per_edge < 4.0, "mean coupled distance too high: {per_edge}");
    }

    #[test]
    fn qaoa_placement_valid() {
        let c = qaoa(24, 2, 3, 1).unwrap();
        let grid = Grid::with_capacity_for(24);
        let p = partition_placement(&c, &grid);
        assert!(p.is_consistent(&grid));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn overfull_grid_panics() {
        let c = qft(10).unwrap();
        let grid = Grid::new(3).unwrap();
        let _ = partition_placement(&c, &grid);
    }
}
