//! The qubit → tile placement map.

use autobraid_circuit::QubitId;
use autobraid_lattice::{Cell, Grid};

/// A bijection-onto-its-image mapping every logical qubit to a distinct
/// tile of the grid. Supports the dynamic remapping (SWAP insertion) at
/// the heart of AutoBraid-full.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::Grid;
/// use autobraid_placement::place::Placement;
///
/// let grid = Grid::with_capacity_for(4);
/// let mut p = Placement::row_major(&grid, 4);
/// let c0 = p.cell_of(0);
/// let c3 = p.cell_of(3);
/// p.swap_qubits(0, 3);
/// assert_eq!(p.cell_of(0), c3);
/// assert_eq!(p.cell_of(3), c0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    qubit_to_cell: Vec<Cell>,
    cell_to_qubit: Vec<Option<QubitId>>,
    cells_per_side: u32,
}

impl Placement {
    /// Row-major default placement: qubit `q` at cell `(q / L, q % L)`.
    ///
    /// # Panics
    ///
    /// Panics if the grid cannot hold `num_qubits`.
    pub fn row_major(grid: &Grid, num_qubits: u32) -> Self {
        let cells: Vec<Cell> = (0..num_qubits as usize).map(|i| grid.cell_at(i)).collect();
        Placement::from_cells(grid, cells)
    }

    /// Builds a placement from an explicit qubit → cell assignment.
    ///
    /// # Panics
    ///
    /// Panics if any cell is outside the grid or assigned twice.
    pub fn from_cells(grid: &Grid, qubit_to_cell: Vec<Cell>) -> Self {
        assert!(
            qubit_to_cell.len() <= grid.cell_count(),
            "{} qubits cannot fit {} tiles",
            qubit_to_cell.len(),
            grid.cell_count()
        );
        let mut cell_to_qubit: Vec<Option<QubitId>> = vec![None; grid.cell_count()];
        for (q, &cell) in qubit_to_cell.iter().enumerate() {
            assert!(grid.contains_cell(cell), "{cell} outside the grid");
            let slot = &mut cell_to_qubit[grid.cell_index(cell)];
            assert!(slot.is_none(), "{cell} assigned to two qubits");
            *slot = Some(q as QubitId);
        }
        Placement {
            qubit_to_cell,
            cell_to_qubit,
            cells_per_side: grid.cells_per_side(),
        }
    }

    /// Number of placed qubits.
    pub fn num_qubits(&self) -> u32 {
        self.qubit_to_cell.len() as u32
    }

    /// The tile currently holding `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a placed qubit.
    pub fn cell_of(&self, q: QubitId) -> Cell {
        self.qubit_to_cell[q as usize]
    }

    /// The qubit at `cell`, if any.
    pub fn qubit_at(&self, grid: &Grid, cell: Cell) -> Option<QubitId> {
        self.cell_to_qubit[grid.cell_index(cell)]
    }

    /// Exchanges the tiles of two qubits (a logical SWAP's effect on the
    /// layout).
    pub fn swap_qubits(&mut self, a: QubitId, b: QubitId) {
        if a == b {
            return;
        }
        let (ca, cb) = (
            self.qubit_to_cell[a as usize],
            self.qubit_to_cell[b as usize],
        );
        self.qubit_to_cell[a as usize] = cb;
        self.qubit_to_cell[b as usize] = ca;
        let ia = self.index_of(ca);
        let ib = self.index_of(cb);
        self.cell_to_qubit.swap(ia, ib);
    }

    /// Moves qubit `q` to a currently empty cell.
    ///
    /// # Panics
    ///
    /// Panics if `target` is occupied.
    pub fn move_to_empty(&mut self, grid: &Grid, q: QubitId, target: Cell) {
        let ti = grid.cell_index(target);
        assert!(self.cell_to_qubit[ti].is_none(), "{target} is occupied");
        let from = self.qubit_to_cell[q as usize];
        let fi = grid.cell_index(from);
        self.cell_to_qubit[fi] = None;
        self.cell_to_qubit[ti] = Some(q);
        self.qubit_to_cell[q as usize] = target;
    }

    /// The qubit → cell assignment as a slice.
    pub fn cells(&self) -> &[Cell] {
        &self.qubit_to_cell
    }

    fn index_of(&self, cell: Cell) -> usize {
        cell.row as usize * self.cells_per_side as usize + cell.col as usize
    }

    /// Like [`Placement::is_consistent`], but reports *which* invariant
    /// broke — the conformance oracle's placement probe, where a bare
    /// `false` would leave nothing to shrink against.
    pub fn validate(&self, grid: &Grid) -> Result<(), String> {
        let mut seen = vec![false; grid.cell_count()];
        for (q, &cell) in self.qubit_to_cell.iter().enumerate() {
            if !grid.contains_cell(cell) {
                return Err(format!("qubit {q} placed at {cell}, outside the grid"));
            }
            let i = grid.cell_index(cell);
            if seen[i] {
                return Err(format!("qubit {q} shares {cell} with an earlier qubit"));
            }
            if self.cell_to_qubit[i] != Some(q as QubitId) {
                return Err(format!(
                    "reverse map at {cell} holds {:?}, expected qubit {q}",
                    self.cell_to_qubit[i]
                ));
            }
            seen[i] = true;
        }
        let placed = self.cell_to_qubit.iter().flatten().count();
        if placed != self.qubit_to_cell.len() {
            return Err(format!(
                "reverse map holds {placed} qubits, forward map holds {}",
                self.qubit_to_cell.len()
            ));
        }
        Ok(())
    }

    /// Checks internal consistency (each qubit on a distinct tile, reverse
    /// map agrees). Intended for tests and debug assertions.
    pub fn is_consistent(&self, grid: &Grid) -> bool {
        self.validate(grid).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let grid = Grid::new(3).unwrap();
        let p = Placement::row_major(&grid, 7);
        assert_eq!(p.cell_of(0), Cell::new(0, 0));
        assert_eq!(p.cell_of(4), Cell::new(1, 1));
        assert_eq!(p.qubit_at(&grid, Cell::new(2, 0)), Some(6));
        assert_eq!(p.qubit_at(&grid, Cell::new(2, 2)), None);
        assert!(p.is_consistent(&grid));
    }

    #[test]
    fn swap_updates_both_maps() {
        let grid = Grid::new(3).unwrap();
        let mut p = Placement::row_major(&grid, 5);
        p.swap_qubits(1, 4);
        assert_eq!(p.cell_of(1), Cell::new(1, 1));
        assert_eq!(p.cell_of(4), Cell::new(0, 1));
        assert_eq!(p.qubit_at(&grid, Cell::new(1, 1)), Some(1));
        assert!(p.is_consistent(&grid));
        p.swap_qubits(2, 2); // no-op
        assert!(p.is_consistent(&grid));
    }

    #[test]
    fn move_to_empty_cell() {
        let grid = Grid::new(3).unwrap();
        let mut p = Placement::row_major(&grid, 4);
        p.move_to_empty(&grid, 0, Cell::new(2, 2));
        assert_eq!(p.cell_of(0), Cell::new(2, 2));
        assert_eq!(p.qubit_at(&grid, Cell::new(0, 0)), None);
        assert!(p.is_consistent(&grid));
    }

    #[test]
    #[should_panic(expected = "is occupied")]
    fn move_to_occupied_panics() {
        let grid = Grid::new(2).unwrap();
        let mut p = Placement::row_major(&grid, 4);
        p.move_to_empty(&grid, 0, Cell::new(1, 1));
    }

    #[test]
    fn validate_names_the_broken_invariant() {
        let grid = Grid::new(2).unwrap();
        let good = Placement::row_major(&grid, 3);
        good.validate(&grid).unwrap();

        // Constructors uphold the invariants, so corrupt the maps directly.
        let mut off_grid = good.clone();
        off_grid.qubit_to_cell[2] = Cell::new(9, 9);
        let err = off_grid.validate(&grid).unwrap_err();
        assert!(err.contains("outside the grid"), "{err}");

        let mut shared = good.clone();
        shared.qubit_to_cell[2] = shared.qubit_to_cell[0];
        let err = shared.validate(&grid).unwrap_err();
        assert!(err.contains("shares"), "{err}");
        shared.cell_to_qubit[grid.cell_index(Cell::new(0, 0))] = Some(2);
        let err = shared.validate(&grid).unwrap_err();
        assert!(err.contains("reverse map"), "{err}");

        let mut stale = good;
        stale.cell_to_qubit[grid.cell_index(Cell::new(1, 1))] = Some(7);
        let err = stale.validate(&grid).unwrap_err();
        assert!(err.contains("reverse map holds"), "{err}");
    }

    #[test]
    #[should_panic(expected = "assigned to two qubits")]
    fn duplicate_cells_rejected() {
        let grid = Grid::new(2).unwrap();
        let _ = Placement::from_cells(&grid, vec![Cell::new(0, 0), Cell::new(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn overfull_rejected() {
        let grid = Grid::new(2).unwrap();
        let cells: Vec<Cell> = (0..5).map(|i| Cell::new(i / 2, i % 2)).collect();
        let _ = Placement::from_cells(&grid, cells);
    }
}
