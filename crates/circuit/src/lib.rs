//! Logical quantum circuit substrate for the AutoBraid scheduler.
//!
//! Provides the circuit IR ([`circuit::Circuit`], [`gate::Gate`]), the
//! dependence analysis every scheduler drains ([`dag`], [`layers`]), an
//! OpenQASM 2.0 subset reader/writer ([`qasm`]), composite-gate lowering
//! ([`decompose`]), and the paper's full benchmark suite ([`generators`]).
//!
//! Its place in the workspace is described in `DESIGN.md` §4 (crate
//! map); the benchmark-reconstruction substitutions are in
//! `DESIGN.md` §3.
//!
//! # Quick example
//!
//! ```
//! use autobraid_circuit::circuit::Circuit;
//! use autobraid_circuit::dag::DependenceDag;
//! use autobraid_circuit::generators::qft::qft;
//!
//! let c: Circuit = qft(16)?;
//! let dag = DependenceDag::new(&c);
//! // The ideal "CP" lower bound used throughout the paper:
//! let cp = dag.critical_path_weight(&c, |g| if g.is_two_qubit() { 2 } else { 1 });
//! assert!(cp > 0);
//! # Ok::<(), autobraid_circuit::error::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod commutation;
pub mod dag;
pub mod decompose;
pub mod error;
pub mod gate;
pub mod generators;
pub mod layers;
pub mod qasm;
pub mod sim;
pub mod stats;
pub mod transform;

pub use circuit::{Circuit, GateId};
pub use dag::{DependenceDag, Frontier};
pub use error::CircuitError;
pub use gate::{Gate, QubitId, SingleKind, TwoKind};
pub use layers::ParallelismProfile;
pub use stats::CircuitStats;
