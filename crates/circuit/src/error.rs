//! Error types for circuit construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate references a qubit outside the circuit's register.
    QubitOutOfRange {
        /// Index of the offending gate.
        gate: usize,
        /// The out-of-range qubit.
        qubit: u32,
        /// The circuit's register size.
        num_qubits: u32,
    },
    /// The OpenQASM source failed to parse.
    Parse {
        /// 1-based source line of the failure.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A generator was asked for a size it cannot produce.
    InvalidSize(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange {
                gate,
                qubit,
                num_qubits,
            } => write!(
                f,
                "gate {gate} references qubit {qubit} but the register holds {num_qubits} qubits"
            ),
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CircuitError::InvalidSize(msg) => write!(f, "invalid benchmark size: {msg}"),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = CircuitError::QubitOutOfRange {
            gate: 3,
            qubit: 9,
            num_qubits: 4,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9') && s.contains('4'));
        let p = CircuitError::Parse {
            line: 12,
            message: "unknown gate foo".into(),
        };
        assert!(p.to_string().contains("line 12"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: Error + Send + Sync + 'static>(_: E) {}
        check(CircuitError::InvalidSize("n must be > 1".into()));
    }
}
