//! The logical circuit container.

use crate::error::CircuitError;
use crate::gate::{Gate, QubitId, SingleKind, TwoKind};
use std::fmt;

/// Index of a gate within a [`Circuit`], in program order.
pub type GateId = usize;

/// An ordered list of logical gates over `n` qubits.
///
/// `Circuit` is the input to every scheduler in the workspace. It validates
/// operand ranges eagerly and offers fluent builder methods for the
/// Clifford+T-style gate set.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2).t(2);
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.two_qubit_count(), 2);
/// assert_eq!(c.num_qubits(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty circuit with a benchmark name attached.
    pub fn named(num_qubits: u32, name: impl Into<String>) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
            name: name.into(),
        }
    }

    /// Builds a circuit from pre-validated parts.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if any gate touches a qubit
    /// `>= num_qubits`.
    pub fn from_gates(num_qubits: u32, gates: Vec<Gate>) -> Result<Self, CircuitError> {
        for (i, g) in gates.iter().enumerate() {
            if g.max_qubit() >= num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    gate: i,
                    qubit: g.max_qubit(),
                    num_qubits,
                });
            }
        }
        Ok(Circuit {
            num_qubits,
            gates,
            name: String::new(),
        })
    }

    /// The benchmark name, if one was attached.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches or replaces the benchmark name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of logical qubits.
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= self.len()`.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id]
    }

    /// Number of two-qubit (braided) gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit (local) gates.
    pub fn single_qubit_count(&self) -> usize {
        self.len() - self.two_qubit_count()
    }

    /// Appends an already-constructed gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the circuit.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        assert!(
            gate.max_qubit() < self.num_qubits,
            "gate {gate} touches qubit {} but circuit has {} qubits",
            gate.max_qubit(),
            self.num_qubits
        );
        self.gates.push(gate);
        self
    }

    /// Appends every gate of `other` (qubit counts must match).
    ///
    /// # Panics
    ///
    /// Panics if `other` has more qubits than `self`.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.num_qubits,
            self.num_qubits
        );
        self.gates.extend_from_slice(&other.gates);
        self
    }

    // --- fluent single-qubit builders -------------------------------------

    /// Appends a Pauli X.
    pub fn x(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::X, q))
    }

    /// Appends a Pauli Y.
    pub fn y(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::Y, q))
    }

    /// Appends a Pauli Z.
    pub fn z(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::Z, q))
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::H, q))
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::S, q))
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::Sdg, q))
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::T, q))
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::Tdg, q))
    }

    /// Appends an Rx rotation.
    pub fn rx(&mut self, angle: f64, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::Rx(angle), q))
    }

    /// Appends an Ry rotation.
    pub fn ry(&mut self, angle: f64, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::Ry(angle), q))
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, angle: f64, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::Rz(angle), q))
    }

    /// Appends a computational-basis measurement.
    pub fn measure(&mut self, q: QubitId) -> &mut Self {
        self.push(Gate::single(SingleKind::Measure, q))
    }

    // --- fluent two-qubit builders -----------------------------------------

    /// Appends a CX (CNOT).
    pub fn cx(&mut self, control: QubitId, target: QubitId) -> &mut Self {
        self.push(Gate::two(TwoKind::Cx, control, target))
    }

    /// Appends a CZ.
    pub fn cz(&mut self, control: QubitId, target: QubitId) -> &mut Self {
        self.push(Gate::two(TwoKind::Cz, control, target))
    }

    /// Appends a controlled phase.
    pub fn cphase(&mut self, angle: f64, control: QubitId, target: QubitId) -> &mut Self {
        self.push(Gate::two(TwoKind::CPhase(angle), control, target))
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: QubitId, b: QubitId) -> &mut Self {
        self.push(Gate::two(TwoKind::Swap, a, b))
    }

    /// Appends a Toffoli (CCX) decomposed into the standard 6-CX + 9
    /// single-qubit network (see [`crate::decompose::ccx_into`]).
    pub fn ccx(&mut self, c0: QubitId, c1: QubitId, target: QubitId) -> &mut Self {
        crate::decompose::ccx_into(self, c0, c1, target);
        self
    }

    /// Iterates over `(GateId, &Gate)` pairs in program order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates.iter().enumerate()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit {}({} qubits, {} gates)",
            if self.name.is_empty() { "" } else { &self.name },
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cz(1, 2).cphase(0.25, 2, 3).t(3).swap(0, 3);
        assert_eq!(c.len(), 6);
        assert_eq!(c.two_qubit_count(), 4);
        assert_eq!(c.single_qubit_count(), 2);
    }

    #[test]
    fn from_gates_validates_range() {
        let ok = Circuit::from_gates(2, vec![Gate::cx(0, 1)]);
        assert!(ok.is_ok());
        let err = Circuit::from_gates(2, vec![Gate::cx(0, 2)]);
        assert!(matches!(
            err,
            Err(CircuitError::QubitOutOfRange {
                gate: 0,
                qubit: 2,
                num_qubits: 2
            })
        ));
    }

    #[test]
    #[should_panic(expected = "touches qubit")]
    fn push_validates_range() {
        let mut c = Circuit::new(2);
        c.x(5);
    }

    #[test]
    fn ccx_expands_to_clifford_t() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert_eq!(c.two_qubit_count(), 6, "standard decomposition uses 6 CX");
        assert!(c.len() > 6);
        assert!(c.gates().iter().all(|g| !matches!(
            g,
            Gate::Two {
                kind: TwoKind::Swap | TwoKind::Cz | TwoKind::CPhase(_),
                ..
            }
        )));
    }

    #[test]
    fn extend_from_appends() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot append")]
    fn extend_from_rejects_larger() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.extend_from(&b);
    }

    #[test]
    fn named_and_display() {
        let mut c = Circuit::named(2, "bell");
        c.h(0).cx(0, 1);
        assert_eq!(c.name(), "bell");
        let text = c.to_string();
        assert!(text.contains("bell"));
        assert!(text.contains("cx q[0], q[1]"));
    }

    #[test]
    fn extend_trait() {
        let mut c = Circuit::new(2);
        c.extend([Gate::cx(0, 1), Gate::single(SingleKind::H, 1)]);
        assert_eq!(c.len(), 2);
    }
}
