//! RevLib-style reversible building-block circuits.
//!
//! The paper's first benchmark category comes from RevLib \[28\]; the
//! original netlists are not available offline, so each block is
//! regenerated with the published qubit count, a gate count close to Table
//! 2, and the structural character of its family (see DESIGN.md §3):
//!
//! * arithmetic blocks (`4gt*`, `alu*`, `rd32*`, `sqrt*`, `squar*`) are
//!   deterministic Toffoli networks over sliding operand windows — the
//!   shape MCT synthesis produces for comparators/adders/squarers;
//! * `urf*` (*unstructured reversible functions*) are seeded uniform
//!   random CX/X/Toffoli netlists, which is what "unstructured" denotes.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use autobraid_telemetry::Rng64;

/// One catalog entry: `(name, qubits, target_gates, family)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// RevLib benchmark name as printed in the paper.
    pub name: &'static str,
    /// Logical qubit count (exact, from Table 2).
    pub qubits: u32,
    /// Published gate count to approximate.
    pub target_gates: usize,
    /// Structured Toffoli network vs unstructured random netlist.
    pub family: Family,
}

/// Structural family of a reversible block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Windowed Toffoli network (comparators, adders, squarers, roots).
    Arithmetic,
    /// Unstructured reversible function: uniform random netlist.
    Unstructured,
}

/// The catalog of building blocks evaluated in Table 2 (plus `urf5_158`).
pub const CATALOG: &[BlockSpec] = &[
    BlockSpec {
        name: "4gt11_8",
        qubits: 5,
        target_gates: 20,
        family: Family::Arithmetic,
    },
    BlockSpec {
        name: "4gt5_75",
        qubits: 5,
        target_gates: 48,
        family: Family::Arithmetic,
    },
    BlockSpec {
        name: "alu-v0_26",
        qubits: 5,
        target_gates: 48,
        family: Family::Arithmetic,
    },
    BlockSpec {
        name: "rd32-v0",
        qubits: 4,
        target_gates: 34,
        family: Family::Arithmetic,
    },
    BlockSpec {
        name: "sqrt8_260",
        qubits: 12,
        target_gates: 3_090,
        family: Family::Arithmetic,
    },
    BlockSpec {
        name: "squar5_261",
        qubits: 13,
        target_gates: 1_110,
        family: Family::Arithmetic,
    },
    BlockSpec {
        name: "squar7",
        qubits: 15,
        target_gates: 4_070,
        family: Family::Arithmetic,
    },
    BlockSpec {
        name: "urf1_278",
        qubits: 9,
        target_gates: 54_800,
        family: Family::Unstructured,
    },
    BlockSpec {
        name: "urf2_277",
        qubits: 8,
        target_gates: 20_100,
        family: Family::Unstructured,
    },
    BlockSpec {
        name: "urf5_158",
        qubits: 9,
        target_gates: 160_000,
        family: Family::Unstructured,
    },
    BlockSpec {
        name: "urf5_280",
        qubits: 9,
        target_gates: 49_800,
        family: Family::Unstructured,
    },
];

/// All catalog names, for harness iteration.
pub const NAMES: [&str; 11] = [
    "4gt11_8",
    "4gt5_75",
    "alu-v0_26",
    "rd32-v0",
    "sqrt8_260",
    "squar5_261",
    "squar7",
    "urf1_278",
    "urf2_277",
    "urf5_158",
    "urf5_280",
];

/// Looks up a catalog entry by name (short aliases like `"urf2"` and
/// `"sqrt8"` resolve to their unique catalog entry).
pub fn spec(name: &str) -> Option<&'static BlockSpec> {
    CATALOG
        .iter()
        .find(|s| s.name == name)
        .or_else(|| CATALOG.iter().find(|s| s.name.starts_with(name)))
}

/// Builds a catalog block by name.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] for unknown names.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::revlib;
///
/// let c = revlib::build("rd32-v0")?;
/// assert_eq!(c.num_qubits(), 4);
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
pub fn build(name: &str) -> Result<Circuit, CircuitError> {
    let spec = spec(name)
        .ok_or_else(|| CircuitError::InvalidSize(format!("unknown benchmark '{name}'")))?;
    let seed = stable_seed(spec.name);
    let mut c = Circuit::named(spec.qubits, spec.name);
    match spec.family {
        Family::Arithmetic => fill_arithmetic(&mut c, spec.target_gates, seed),
        Family::Unstructured => fill_unstructured(&mut c, spec.target_gates, seed),
    }
    Ok(c)
}

/// FNV-1a so block contents are stable across runs and platforms.
fn stable_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Windowed Toffoli network: MCT synthesis for arithmetic walks operand
/// windows across the register (carry chains, partial products), which is
/// what we emit — a deterministic sweep of CCX/CX/X over sliding windows.
fn fill_arithmetic(c: &mut Circuit, target_gates: usize, seed: u64) {
    let n = c.num_qubits();
    let mut rng = Rng64::seed_from_u64(seed);
    let mut window = 0u32;
    while c.len() < target_gates {
        let a = window % n;
        let b = (window + 1) % n;
        let t = (window + 2) % n;
        // Period-4 pattern: carry (ccx), propagate (cx), flip (x), sum (cx).
        match rng.gen_range(0..4) {
            0 if n >= 3 && c.len() + 15 <= target_gates + 7 => {
                c.ccx(a, b, t);
            }
            1 => {
                c.cx(a, t.max(b));
            }
            2 => {
                c.x(t);
            }
            _ => {
                c.cx(b.min(t), (b.min(t) + 1) % n.max(2));
            }
        }
        window += 1;
    }
}

/// Unstructured reversible function: uniform random reversible netlist.
fn fill_unstructured(c: &mut Circuit, target_gates: usize, seed: u64) {
    let n = c.num_qubits();
    let mut rng = Rng64::seed_from_u64(seed);
    let random_pair = |rng: &mut Rng64| {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        (a, b)
    };
    while c.len() < target_gates {
        match rng.gen_range(0..10) {
            0..=6 => {
                let (a, b) = random_pair(&mut rng);
                c.cx(a, b);
            }
            7 if n >= 3 && c.len() + 15 <= target_gates + 7 => {
                let (a, b) = random_pair(&mut rng);
                let mut t = rng.gen_range(0..n);
                while t == a || t == b {
                    t = rng.gen_range(0..n);
                }
                c.ccx(a, b, t);
            }
            _ => {
                c.x(rng.gen_range(0..n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_with_exact_qubits() {
        for spec in CATALOG {
            let c = build(spec.name).unwrap();
            assert_eq!(c.num_qubits(), spec.qubits, "{}", spec.name);
        }
    }

    #[test]
    fn gate_counts_are_close_to_published() {
        for spec in CATALOG {
            let c = build(spec.name).unwrap();
            let lo = spec.target_gates;
            let hi = spec.target_gates + 16; // may overshoot by < 1 Toffoli
            assert!(
                (lo..=hi).contains(&c.len()),
                "{}: {} gates, want ≈{}",
                spec.name,
                c.len(),
                spec.target_gates
            );
        }
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(build("urf2_277").unwrap(), build("urf2_277").unwrap());
        assert_eq!(build("sqrt8_260").unwrap(), build("sqrt8_260").unwrap());
    }

    #[test]
    fn short_aliases_resolve() {
        assert_eq!(spec("urf2").unwrap().name, "urf2_277");
        assert_eq!(spec("sqrt8").unwrap().name, "sqrt8_260");
        assert!(spec("zzz").is_none());
    }

    #[test]
    fn unknown_name_errors() {
        assert!(build("missing_bench").is_err());
    }

    #[test]
    fn urf_blocks_are_cx_heavy() {
        let c = build("urf2_277").unwrap();
        let frac = c.two_qubit_count() as f64 / c.len() as f64;
        assert!(
            frac > 0.5,
            "unstructured blocks are communication heavy: {frac}"
        );
    }
}
