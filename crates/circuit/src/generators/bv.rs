//! Bernstein–Vazirani.

use crate::circuit::Circuit;
use crate::error::CircuitError;

/// Bernstein–Vazirani over `n` qubits (`n - 1` data qubits plus one
/// ancilla) with the given secret string (one bit per data qubit).
///
/// The oracle CXs all target the ancilla, so there is **zero CX
/// parallelism** (paper Fig. 6) — braiding for BV never congests and every
/// scheduler should hit the critical path.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2` or the secret length is
/// not `n - 1`.
pub fn bv(n: u32, secret: &[bool]) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!(
            "bv needs n >= 2, got {n}"
        )));
    }
    if secret.len() as u32 != n - 1 {
        return Err(CircuitError::InvalidSize(format!(
            "bv secret must have {} bits, got {}",
            n - 1,
            secret.len()
        )));
    }
    let mut c = Circuit::named(n, format!("bv{n}"));
    let ancilla = n - 1;
    for q in 0..n - 1 {
        c.h(q);
    }
    c.x(ancilla).h(ancilla);
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.cx(q as u32, ancilla);
        }
    }
    for q in 0..n - 1 {
        c.h(q);
    }
    Ok(c)
}

/// BV with the all-ones secret — the worst case (longest CX chain) and the
/// configuration whose gate count matches the paper's Table 2
/// (`3n - 1` gates; BV-100 → 299).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2`.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::bv::bv_all_ones;
///
/// assert_eq!(bv_all_ones(100)?.len(), 299);
/// assert_eq!(bv_all_ones(200)?.len(), 599);
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
pub fn bv_all_ones(n: u32) -> Result<Circuit, CircuitError> {
    bv(n, &vec![true; (n - 1).max(1) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::ParallelismProfile;

    #[test]
    fn paper_gate_counts() {
        assert_eq!(bv_all_ones(100).unwrap().len(), 299);
        assert_eq!(bv_all_ones(150).unwrap().len(), 449);
        assert_eq!(bv_all_ones(200).unwrap().len(), 599);
    }

    #[test]
    fn zero_cx_parallelism() {
        let c = bv_all_ones(50).unwrap();
        let profile = ParallelismProfile::analyze(&c);
        assert!(
            !profile.has_cx_parallelism(),
            "BV has no concurrent CX gates"
        );
    }

    #[test]
    fn secret_controls_cx_count() {
        let c = bv(6, &[true, false, true, false, true]).unwrap();
        assert_eq!(c.two_qubit_count(), 3);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(bv(1, &[]).is_err());
        assert!(bv(4, &[true]).is_err());
    }
}
