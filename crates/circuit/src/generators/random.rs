//! Random circuit generators for tests and stress benchmarks.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use autobraid_telemetry::Rng64;

/// A seeded random circuit: `num_gates` gates, each two-qubit with
/// probability `two_qubit_fraction` (uniform random distinct operands)
/// and otherwise a uniform random single-qubit Clifford+T gate.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2` or the fraction is
/// outside `[0, 1]`.
pub fn random_circuit(
    n: u32,
    num_gates: usize,
    two_qubit_fraction: f64,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!("need n >= 2, got {n}")));
    }
    if !(0.0..=1.0).contains(&two_qubit_fraction) {
        return Err(CircuitError::InvalidSize(format!(
            "two_qubit_fraction must be in [0,1], got {two_qubit_fraction}"
        )));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("random{n}"));
    for _ in 0..num_gates {
        if rng.gen_bool(two_qubit_fraction) {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            c.cx(a, b);
        } else {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..5) {
                0 => c.h(q),
                1 => c.t(q),
                2 => c.s(q),
                3 => c.x(q),
                _ => c.z(q),
            };
        }
    }
    Ok(c)
}

/// One maximally parallel layer of CX gates over disjoint random pairs:
/// `pairs` gates touching `2 × pairs` distinct qubits. All gates are
/// theoretically concurrent — the router stress case.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `2 * pairs > n`.
pub fn random_cx_layer(n: u32, pairs: u32, seed: u64) -> Result<Circuit, CircuitError> {
    if 2 * pairs > n {
        return Err(CircuitError::InvalidSize(format!(
            "{pairs} disjoint pairs need {} qubits, have {n}",
            2 * pairs
        )));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut qubits: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut qubits);
    let mut c = Circuit::named(n, format!("cxlayer{n}x{pairs}"));
    for chunk in qubits.chunks(2).take(pairs as usize) {
        c.cx(chunk[0], chunk[1]);
    }
    Ok(c)
}

/// A layered random circuit: `layers` rounds, each a maximal set of CX
/// gates over disjoint random pairs followed (with probability
/// `single_fraction` per qubit) by a random single-qubit gate. The
/// conformance fuzzer's bread-and-butter workload: every layer is
/// theoretically concurrent, so the router sees sustained congestion.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2` or `single_fraction`
/// is outside `[0, 1]`.
pub fn layered_cx(
    n: u32,
    layers: usize,
    single_fraction: f64,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!("need n >= 2, got {n}")));
    }
    if !(0.0..=1.0).contains(&single_fraction) {
        return Err(CircuitError::InvalidSize(format!(
            "single_fraction must be in [0,1], got {single_fraction}"
        )));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("layered{n}x{layers}"));
    let mut qubits: Vec<u32> = (0..n).collect();
    for _ in 0..layers {
        rng.shuffle(&mut qubits);
        for chunk in qubits.chunks_exact(2) {
            c.cx(chunk[0], chunk[1]);
        }
        for q in 0..n {
            if rng.gen_bool(single_fraction) {
                match rng.gen_range(0..4) {
                    0 => c.h(q),
                    1 => c.t(q),
                    2 => c.s(q),
                    _ => c.x(q),
                };
            }
        }
    }
    Ok(c)
}

/// An all-to-all burst circuit: `bursts` rounds, each a random hub qubit
/// issuing CX gates to `fanout` random distinct partners. Hub stars make
/// the interference graph dense (every gate of a burst shares the hub),
/// exercising the stack finder's peeling far from the disjoint-pair happy
/// path.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2` or `fanout >= n`.
pub fn all_to_all_burst(
    n: u32,
    bursts: usize,
    fanout: u32,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!("need n >= 2, got {n}")));
    }
    if fanout >= n {
        return Err(CircuitError::InvalidSize(format!(
            "fanout {fanout} needs at least {} qubits, have {n}",
            fanout + 1
        )));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("burst{n}x{bursts}"));
    let others: Vec<u32> = (0..n).collect();
    for _ in 0..bursts {
        let hub = rng.gen_range(0..n);
        let partners: Vec<u32> = others.iter().copied().filter(|&q| q != hub).collect();
        for &target in &rng.sample(&partners, fanout as usize) {
            c.cx(hub, target);
        }
    }
    Ok(c)
}

/// A nearest-neighbor brickwork chain: `rounds` alternating layers of
/// CX(i, i+1) over even then odd offsets, with each gate's direction
/// chosen at random. The serpentine-placement fast path's native
/// workload.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2`.
pub fn neighbor_chain(n: u32, rounds: usize, seed: u64) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!("need n >= 2, got {n}")));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("chain{n}x{rounds}"));
    for round in 0..rounds {
        let start = (round % 2) as u32;
        let mut q = start;
        while q + 1 < n {
            if rng.gen_bool(0.5) {
                c.cx(q, q + 1);
            } else {
                c.cx(q + 1, q);
            }
            q += 2;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::ParallelismProfile;

    #[test]
    fn respects_gate_count_and_fraction() {
        let c = random_circuit(10, 1000, 0.5, 42).unwrap();
        assert_eq!(c.len(), 1000);
        let frac = c.two_qubit_count() as f64 / 1000.0;
        assert!((0.4..=0.6).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn extremes_of_fraction() {
        assert_eq!(random_circuit(5, 100, 0.0, 1).unwrap().two_qubit_count(), 0);
        assert_eq!(
            random_circuit(5, 100, 1.0, 1).unwrap().two_qubit_count(),
            100
        );
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            random_circuit(8, 50, 0.4, 9).unwrap(),
            random_circuit(8, 50, 0.4, 9).unwrap()
        );
        assert_ne!(
            random_circuit(8, 50, 0.4, 9).unwrap(),
            random_circuit(8, 50, 0.4, 10).unwrap()
        );
    }

    #[test]
    fn cx_layer_is_fully_parallel() {
        let c = random_cx_layer(20, 10, 3).unwrap();
        assert_eq!(c.len(), 10);
        let p = ParallelismProfile::analyze(&c);
        assert_eq!(p.layer_count(), 1);
        assert_eq!(p.max_concurrent_cx(), 10);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(random_circuit(1, 10, 0.5, 0).is_err());
        assert!(random_circuit(4, 10, 1.5, 0).is_err());
        assert!(random_cx_layer(5, 3, 0).is_err());
        assert!(layered_cx(1, 3, 0.0, 0).is_err());
        assert!(layered_cx(4, 3, -0.1, 0).is_err());
        assert!(all_to_all_burst(1, 2, 0, 0).is_err());
        assert!(all_to_all_burst(4, 2, 4, 0).is_err());
        assert!(neighbor_chain(1, 2, 0).is_err());
    }

    #[test]
    fn layered_cx_packs_maximal_layers() {
        let c = layered_cx(8, 5, 0.0, 11).unwrap();
        // 4 disjoint CX per layer, no single-qubit gates.
        assert_eq!(c.len(), 20);
        assert_eq!(c.two_qubit_count(), 20);
        let p = ParallelismProfile::analyze(&c);
        assert_eq!(p.max_concurrent_cx(), 4);
        // Odd qubit count leaves one qubit out per layer.
        let odd = layered_cx(7, 2, 0.0, 11).unwrap();
        assert_eq!(odd.two_qubit_count(), 6);
        assert_eq!(
            layered_cx(8, 5, 0.3, 11).unwrap(),
            layered_cx(8, 5, 0.3, 11).unwrap()
        );
    }

    #[test]
    fn burst_gates_share_their_hub() {
        let c = all_to_all_burst(9, 4, 5, 23).unwrap();
        assert_eq!(c.len(), 20);
        assert_eq!(c.two_qubit_count(), 20);
        for burst in c.gates().chunks(5) {
            let hub = burst[0].pair().unwrap().0;
            for g in burst {
                let (control, target) = g.pair().unwrap();
                assert_eq!(control, hub);
                assert_ne!(target, hub);
            }
            // Partners within one burst are distinct.
            let mut targets: Vec<u32> = burst.iter().map(|g| g.pair().unwrap().1).collect();
            targets.sort_unstable();
            targets.dedup();
            assert_eq!(targets.len(), 5);
        }
    }

    #[test]
    fn neighbor_chain_is_brickwork() {
        let c = neighbor_chain(6, 4, 31).unwrap();
        // Even rounds: pairs (0,1)(2,3)(4,5); odd rounds: (1,2)(3,4).
        assert_eq!(c.len(), 2 * 3 + 2 * 2);
        for g in c.gates() {
            let (a, b) = g.pair().unwrap();
            assert_eq!(a.abs_diff(b), 1, "{g:?} is not nearest-neighbor");
        }
        assert_eq!(
            neighbor_chain(6, 4, 31).unwrap(),
            neighbor_chain(6, 4, 31).unwrap()
        );
        assert_ne!(
            neighbor_chain(6, 4, 31).unwrap(),
            neighbor_chain(6, 4, 32).unwrap()
        );
    }
}
