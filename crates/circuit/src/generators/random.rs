//! Random circuit generators for tests and stress benchmarks.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use autobraid_telemetry::Rng64;

/// A seeded random circuit: `num_gates` gates, each two-qubit with
/// probability `two_qubit_fraction` (uniform random distinct operands)
/// and otherwise a uniform random single-qubit Clifford+T gate.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2` or the fraction is
/// outside `[0, 1]`.
pub fn random_circuit(
    n: u32,
    num_gates: usize,
    two_qubit_fraction: f64,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!("need n >= 2, got {n}")));
    }
    if !(0.0..=1.0).contains(&two_qubit_fraction) {
        return Err(CircuitError::InvalidSize(format!(
            "two_qubit_fraction must be in [0,1], got {two_qubit_fraction}"
        )));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("random{n}"));
    for _ in 0..num_gates {
        if rng.gen_bool(two_qubit_fraction) {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            c.cx(a, b);
        } else {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..5) {
                0 => c.h(q),
                1 => c.t(q),
                2 => c.s(q),
                3 => c.x(q),
                _ => c.z(q),
            };
        }
    }
    Ok(c)
}

/// One maximally parallel layer of CX gates over disjoint random pairs:
/// `pairs` gates touching `2 × pairs` distinct qubits. All gates are
/// theoretically concurrent — the router stress case.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `2 * pairs > n`.
pub fn random_cx_layer(n: u32, pairs: u32, seed: u64) -> Result<Circuit, CircuitError> {
    if 2 * pairs > n {
        return Err(CircuitError::InvalidSize(format!(
            "{pairs} disjoint pairs need {} qubits, have {n}",
            2 * pairs
        )));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut qubits: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut qubits);
    let mut c = Circuit::named(n, format!("cxlayer{n}x{pairs}"));
    for chunk in qubits.chunks(2).take(pairs as usize) {
        c.cx(chunk[0], chunk[1]);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::ParallelismProfile;

    #[test]
    fn respects_gate_count_and_fraction() {
        let c = random_circuit(10, 1000, 0.5, 42).unwrap();
        assert_eq!(c.len(), 1000);
        let frac = c.two_qubit_count() as f64 / 1000.0;
        assert!((0.4..=0.6).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn extremes_of_fraction() {
        assert_eq!(random_circuit(5, 100, 0.0, 1).unwrap().two_qubit_count(), 0);
        assert_eq!(
            random_circuit(5, 100, 1.0, 1).unwrap().two_qubit_count(),
            100
        );
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            random_circuit(8, 50, 0.4, 9).unwrap(),
            random_circuit(8, 50, 0.4, 9).unwrap()
        );
        assert_ne!(
            random_circuit(8, 50, 0.4, 9).unwrap(),
            random_circuit(8, 50, 0.4, 10).unwrap()
        );
    }

    #[test]
    fn cx_layer_is_fully_parallel() {
        let c = random_cx_layer(20, 10, 3).unwrap();
        assert_eq!(c.len(), 10);
        let p = ParallelismProfile::analyze(&c);
        assert_eq!(p.layer_count(), 1);
        assert_eq!(p.max_concurrent_cx(), 10);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(random_circuit(1, 10, 0.5, 0).is_err());
        assert!(random_circuit(4, 10, 1.5, 0).is_err());
        assert!(random_cx_layer(5, 3, 0).is_err());
    }
}
