//! Quantum Fourier transform.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use std::f64::consts::PI;

/// The textbook `n`-qubit QFT: a Hadamard on each qubit followed by
/// controlled-phase rotations from every later qubit.
///
/// Gate count is `n + n(n-1)/2` with each controlled phase counted as one
/// two-qubit gate, matching the paper's Table 2 (QFT-200 → 20.1K gates).
/// The communication pattern is all-to-all — the paper's hardest case and
/// the one where dynamic placement earns its 30× speedup.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2`.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::qft::qft;
///
/// let c = qft(200)?;
/// assert_eq!(c.len(), 20_100);
/// assert_eq!(c.two_qubit_count(), 19_900);
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
pub fn qft(n: u32) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!(
            "qft needs n >= 2, got {n}"
        )));
    }
    let mut c = Circuit::named(n, format!("qft{n}"));
    for i in 0..n {
        c.h(i);
        for j in i + 1..n {
            // Controlled phase by pi / 2^(j-i), controlled on the later qubit.
            let angle = PI / f64::from(1u32 << (j - i).min(30));
            c.cphase(angle, j, i);
        }
    }
    Ok(c)
}

/// QFT followed by its mirror (approximate inverse), doubling depth while
/// keeping the all-to-all pattern. Used to stress schedulers in tests.
pub fn qft_mirrored(n: u32) -> Result<Circuit, CircuitError> {
    let forward = qft(n)?;
    let mut c = Circuit::named(n, format!("qft{n}_mirror"));
    c.extend_from(&forward);
    for gate in forward.gates().iter().rev() {
        c.push(*gate);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DependenceDag;

    #[test]
    fn gate_counts_match_formula() {
        for n in [2u32, 5, 16, 50] {
            let c = qft(n).unwrap();
            let expected = n + n * (n - 1) / 2;
            assert_eq!(c.len() as u32, expected, "n={n}");
            assert_eq!(c.two_qubit_count() as u32, n * (n - 1) / 2);
            assert_eq!(c.num_qubits(), n);
        }
    }

    #[test]
    fn paper_sizes() {
        assert_eq!(qft(16).unwrap().len(), 136);
        assert_eq!(qft(400).unwrap().len(), 80_200); // Table 2: 80.2K
        assert_eq!(qft(500).unwrap().len(), 125_250); // Table 2: 0.12M
    }

    #[test]
    fn rejects_tiny() {
        assert!(qft(0).is_err());
        assert!(qft(1).is_err());
    }

    #[test]
    fn depth_is_linear_not_quadratic() {
        // The QFT dependence depth is 2n - 2 gates (each qubit's H must wait
        // for the cascade on earlier qubits, but cascades overlap).
        let c = qft(20).unwrap();
        let depth = DependenceDag::new(&c).depth();
        assert!((20..=60).contains(&depth), "depth = {depth}");
    }

    #[test]
    fn mirrored_doubles_gates() {
        let c = qft_mirrored(8).unwrap();
        assert_eq!(c.len(), 2 * qft(8).unwrap().len());
    }
}
