//! QAOA for MaxCut on random regular graphs.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use autobraid_telemetry::Rng64;

/// Generates a random `degree`-regular graph on `n` vertices via the
/// pairing model (retrying until simple), returning its edge list.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n * degree` is odd, or
/// `degree >= n`.
pub fn random_regular_graph(
    n: u32,
    degree: u32,
    seed: u64,
) -> Result<Vec<(u32, u32)>, CircuitError> {
    if degree >= n || !(n * degree).is_multiple_of(2) {
        return Err(CircuitError::InvalidSize(format!(
            "no simple {degree}-regular graph on {n} vertices"
        )));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    'attempt: for _ in 0..200 {
        // Pairing model: each vertex contributes `degree` stubs.
        let mut stubs: Vec<u32> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v, degree as usize))
            .collect();
        rng.shuffle(&mut stubs);
        let mut edges = Vec::with_capacity(stubs.len() / 2);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b {
                continue 'attempt;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue 'attempt;
            }
            edges.push(key);
        }
        return Ok(edges);
    }
    Err(CircuitError::InvalidSize(format!(
        "failed to sample a simple {degree}-regular graph on {n} vertices"
    )))
}

/// QAOA MaxCut ansatz: `rounds` alternating cost/mixer layers over a random
/// `degree`-regular interaction graph.
///
/// Each edge's cost term is `CX · Rz · CX`; the mixer is an `Rx` layer.
/// Disjoint edges are theoretically concurrent, so QAOA exercises both the
/// path finder (medium-density interference) and the layout optimizer.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] for impossible graph parameters or
/// `rounds == 0`.
pub fn qaoa(n: u32, rounds: u32, degree: u32, seed: u64) -> Result<Circuit, CircuitError> {
    if rounds == 0 {
        return Err(CircuitError::InvalidSize("qaoa needs rounds >= 1".into()));
    }
    let edges = random_regular_graph(n, degree, seed)?;
    let mut rng = Rng64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut c = Circuit::named(n, format!("qaoa{n}"));
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..rounds {
        let gamma: f64 = rng.gen_range(0.1..1.0);
        let beta: f64 = rng.gen_range(0.1..1.0);
        for &(a, b) in &edges {
            c.cx(a, b).rz(gamma, b).cx(a, b);
        }
        for q in 0..n {
            c.rx(beta, q);
        }
    }
    Ok(c)
}

/// The paper's QAOA instances: 3-regular MaxCut, with round counts chosen
/// to land near Table 2's gate counts (QAOA-100 → ≈4.5K gates).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if no simple 3-regular graph
/// exists on `n` vertices (odd `n`).
pub fn qaoa_paper(n: u32) -> Result<Circuit, CircuitError> {
    qaoa(n, 8, 3, 2021)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graph_degrees() {
        let edges = random_regular_graph(20, 3, 7).unwrap();
        assert_eq!(edges.len(), 30);
        let mut deg = [0u32; 20];
        for (a, b) in edges {
            assert_ne!(a, b);
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d == 3));
    }

    #[test]
    fn regular_graph_is_simple() {
        let edges = random_regular_graph(30, 4, 42).unwrap();
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len(), "no duplicate edges");
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(
            random_regular_graph(16, 3, 5).unwrap(),
            random_regular_graph(16, 3, 5).unwrap()
        );
        let c1 = qaoa(16, 2, 3, 5).unwrap();
        let c2 = qaoa(16, 2, 3, 5).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn paper_qaoa100_gate_count() {
        // 100 H + 8 rounds × (150 edges × 3 + 100 Rx) = 4500.
        let c = qaoa_paper(100).unwrap();
        assert!((4200..=4800).contains(&c.len()), "got {}", c.len());
    }

    #[test]
    fn rejects_impossible() {
        assert!(random_regular_graph(5, 3, 1).is_err(), "odd stub total");
        assert!(random_regular_graph(4, 4, 1).is_err(), "degree >= n");
        assert!(qaoa(8, 0, 3, 1).is_err());
    }
}
