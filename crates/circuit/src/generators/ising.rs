//! Trotterized transverse-field Ising model.

use crate::circuit::Circuit;
use crate::error::CircuitError;

/// One-dimensional Ising model evolution over `n` spins for `steps`
/// first-order Trotter steps.
///
/// Each step applies `ZZ(θ)` on even-coupled then odd-coupled neighbour
/// pairs (each interaction = CX · Rz · CX) followed by a transverse-field
/// `Rx` layer. The even layer alone yields `n/2` simultaneous CX gates —
/// the paper's canonical high-communication-parallelism example (Fig. 7).
/// Because the coupling graph is a path (maximal degree 2), the linear
/// placement optimizer schedules it at the critical path.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2` or `steps == 0`.
pub fn ising(n: u32, steps: u32) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!(
            "ising needs n >= 2, got {n}"
        )));
    }
    if steps == 0 {
        return Err(CircuitError::InvalidSize("ising needs steps >= 1".into()));
    }
    let (theta, field) = (0.3, 0.7);
    let mut c = Circuit::named(n, format!("im{n}"));
    for _ in 0..steps {
        for start in [0u32, 1u32] {
            let mut q = start;
            while q + 1 < n {
                c.cx(q, q + 1).rz(theta, q + 1).cx(q, q + 1);
                q += 2;
            }
        }
        for q in 0..n {
            c.rx(field, q);
        }
    }
    Ok(c)
}

/// The paper's Ising instances. Trotter steps are chosen to land near the
/// published gate counts: IM-10 → 13 steps (≈ 480 gates), larger instances
/// use the step counts implied by Table 2's gates-per-qubit ratio.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2`.
pub fn ising_paper(n: u32) -> Result<Circuit, CircuitError> {
    let steps = match n {
        10 => 13,  // Table 2: 480 gates
        16 => 8,   // Table 1's IM16
        500 => 2,  // Table 2: 5494 gates ≈ 2 steps + boundary layers
        1000 => 2, // Table 2: 10.9K gates
        _ => 4,
    };
    ising(n, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::ParallelismProfile;

    #[test]
    fn per_step_gate_budget() {
        // Per step: 3 gates per coupled pair (n-1 pairs) + n Rx.
        let n = 10u32;
        let c = ising(n, 1).unwrap();
        assert_eq!(c.len() as u32, 3 * (n - 1) + n);
        assert_eq!(c.two_qubit_count() as u32, 2 * (n - 1));
    }

    #[test]
    fn paper_im10_close_to_480() {
        let c = ising_paper(10).unwrap();
        assert!((450..=510).contains(&c.len()), "got {}", c.len());
    }

    #[test]
    fn half_n_simultaneous_cx() {
        let n = 20;
        let p = ParallelismProfile::analyze(&ising(n, 1).unwrap());
        assert_eq!(p.max_concurrent_cx() as u32, n / 2);
    }

    #[test]
    fn constant_depth_in_n() {
        use crate::dag::DependenceDag;
        let d500 = DependenceDag::new(&ising(500, 2).unwrap()).depth();
        let d1000 = DependenceDag::new(&ising(1000, 2).unwrap()).depth();
        assert_eq!(d500, d1000, "Ising depth is independent of n (Table 2 CP)");
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(ising(1, 3).is_err());
        assert!(ising(8, 0).is_err());
    }
}
