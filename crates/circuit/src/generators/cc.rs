//! Counterfeit-coin finding.

use crate::circuit::Circuit;
use crate::error::CircuitError;

/// The counterfeit-coin finding circuit over `n` qubits (`n - 1` coin
/// qubits plus one balance ancilla).
///
/// Superposes a subset of coins on the balance via a CX fan-in, exactly
/// the structure of the IBM Qiskit reference: one H per coin followed by a
/// CX onto the ancilla, giving `2(n - 1)` gates (paper Table 2: CC-100 →
/// 198 gates). Like BV, all CXs share the ancilla — no CX parallelism.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 2`.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::cc::counterfeit_coin;
///
/// assert_eq!(counterfeit_coin(100)?.len(), 198);
/// assert_eq!(counterfeit_coin(300)?.len(), 598);
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
pub fn counterfeit_coin(n: u32) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidSize(format!(
            "cc needs n >= 2, got {n}"
        )));
    }
    let mut c = Circuit::named(n, format!("cc{n}"));
    let balance = n - 1;
    for coin in 0..n - 1 {
        c.h(coin);
    }
    for coin in 0..n - 1 {
        c.cx(coin, balance);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::ParallelismProfile;

    #[test]
    fn paper_gate_counts() {
        assert_eq!(counterfeit_coin(100).unwrap().len(), 198);
        assert_eq!(counterfeit_coin(200).unwrap().len(), 398);
        assert_eq!(counterfeit_coin(300).unwrap().len(), 598);
    }

    #[test]
    fn serial_communication() {
        let p = ParallelismProfile::analyze(&counterfeit_coin(40).unwrap());
        assert!(!p.has_cx_parallelism());
    }

    #[test]
    fn rejects_tiny() {
        assert!(counterfeit_coin(1).is_err());
        assert!(counterfeit_coin(2).is_ok());
    }
}
