//! Shor's algorithm skeleton (Beauregard-style modular exponentiation).

use crate::circuit::Circuit;
use crate::error::CircuitError;
use std::f64::consts::PI;

/// A Shor's-algorithm skeleton for factoring a `bits`-bit modulus using the
/// Beauregard layout: a `2·bits` control register driving controlled
/// QFT-adder cascades on a `bits + 3` work register.
///
/// Real controlled modular addition applies a phase cascade from the
/// control to every work qubit; following standard practice (and to match
/// the paper's ScaffCC-generated gate count of 36.5K for 471 qubits) the
/// cascade is truncated at `cutoff` rotations — the *approximate QFT*
/// optimization, which drops rotations below machine precision.
///
/// The communication pattern — long-range fan-out from each control into a
/// sliding window of the work register, chained sequentially — is what the
/// schedulers observe; it is preserved exactly by the skeleton.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `bits < 2` or `cutoff == 0`.
pub fn shor_like(bits: u32, cutoff: u32) -> Result<Circuit, CircuitError> {
    if bits < 2 {
        return Err(CircuitError::InvalidSize(format!(
            "shor needs bits >= 2, got {bits}"
        )));
    }
    if cutoff == 0 {
        return Err(CircuitError::InvalidSize("shor needs cutoff >= 1".into()));
    }
    let controls = 2 * bits;
    let work = bits + 3;
    shor_registers(controls, work, cutoff)
}

fn shor_registers(controls: u32, work: u32, cutoff: u32) -> Result<Circuit, CircuitError> {
    let n = controls + work;
    let mut c = Circuit::named(n, format!("shor{n}"));
    // Phase-estimation superposition over the control register.
    for q in 0..controls {
        c.h(q);
    }
    // One controlled (truncated) QFT-adder per control qubit.
    for j in 0..controls {
        let width = cutoff.min(work);
        // The adder window slides across the work register as the
        // exponentiation proceeds (mod-multiply by a^2^j).
        let offset = j % (work - width + 1).max(1);
        for i in 0..width {
            let target = controls + offset + i;
            let angle = PI / f64::from(1u32 << i.min(30));
            c.cphase(angle, j, target);
        }
    }
    // Inverse QFT on the control register (truncated the same way).
    for i in (0..controls).rev() {
        for j in (i + 1..controls.min(i + 1 + cutoff)).rev() {
            let angle = -PI / f64::from(1u32 << (j - i).min(30));
            c.cphase(angle, j, i);
        }
        c.h(i);
    }
    for q in 0..controls {
        c.measure(q);
    }
    Ok(c)
}

/// The paper's Shor instance: 471 qubits (a 312-qubit phase-estimation
/// control register over a 159-qubit work register, i.e. `bits = 156`),
/// with the cutoff chosen so the total lands near Table 2's 36.5K gates.
///
/// # Examples
///
/// ```
/// let c = autobraid_circuit::generators::shor::shor_paper()?;
/// assert_eq!(c.num_qubits(), 471);
/// assert!((30_000..=45_000).contains(&c.len()));
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
pub fn shor_paper() -> Result<Circuit, CircuitError> {
    shor_registers(312, 159, 57)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_layout() {
        let c = shor_like(8, 4).unwrap();
        assert_eq!(c.num_qubits(), 2 * 8 + 8 + 3);
    }

    #[test]
    fn paper_size() {
        let c = shor_paper().unwrap();
        assert_eq!(c.num_qubits(), 471);
        // Table 2: 36.5K gates; the skeleton must land in the same regime.
        assert!((30_000..=45_000).contains(&c.len()), "got {}", c.len());
    }

    #[test]
    fn cutoff_bounds_gate_count() {
        let small = shor_like(16, 2).unwrap();
        let large = shor_like(16, 16).unwrap();
        assert!(small.len() < large.len());
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(shor_like(1, 4).is_err());
        assert!(shor_like(8, 0).is_err());
    }
}
