//! Benchmark circuit generators for the paper's evaluation suite.
//!
//! Two categories, as in Table 2:
//!
//! * **Building blocks** — RevLib-style reversible functions
//!   ([`revlib`]): compare/ALU/adder/square/sqrt skeletons built from
//!   Toffoli networks plus *unstructured reversible functions* (urf) as
//!   seeded random CX netlists. The original RevLib files are not
//!   available offline; these generators match the published qubit counts
//!   and approximate gate counts (see DESIGN.md §3).
//! * **Real-world applications** — QFT ([`qft`]), Bernstein-Vazirani
//!   ([`bv`]), counterfeit-coin finding ([`cc`]), the Ising model
//!   ([`ising`]), QAOA ([`qaoa`]), binary welded tree ([`bwt`]), and a
//!   Shor-like modular-exponentiation skeleton ([`shor`]).

pub mod adder;
pub mod bv;
pub mod bwt;
pub mod cc;
pub mod ising;
pub mod qaoa;
pub mod qft;
pub mod qpe;
pub mod random;
pub mod revlib;
pub mod shor;

use crate::circuit::Circuit;
use crate::error::CircuitError;

/// Builds a benchmark by its paper name, e.g. `"qft"`, `"bv"`, `"cc"`,
/// `"im"` (Ising model), `"qaoa"`, `"bwt"`, `"shor"`, or any RevLib block
/// name from [`revlib::NAMES`]. Sized benchmarks take `n` as the qubit
/// count; RevLib blocks and `shor` ignore it (their sizes are fixed by the
/// paper).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] for unknown names or sizes the
/// generator cannot produce.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators;
///
/// let qft16 = generators::by_name("qft", 16)?;
/// assert_eq!(qft16.num_qubits(), 16);
/// let shors = generators::by_name("shor", 0)?;
/// assert_eq!(shors.num_qubits(), 471);
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
pub fn by_name(name: &str, n: u32) -> Result<Circuit, CircuitError> {
    match name {
        "qft" => qft::qft(n),
        "qpe" => qpe::qpe(n, 0.375),
        "adder" => adder::cuccaro_adder(n),
        "bv" => bv::bv_all_ones(n),
        "cc" => cc::counterfeit_coin(n),
        "im" | "ising" => ising::ising_paper(n),
        "qaoa" => qaoa::qaoa_paper(n),
        "bwt" => bwt::bwt_paper(n),
        "shor" => shor::shor_paper(),
        other => revlib::build(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_dispatches() {
        assert_eq!(by_name("qft", 8).unwrap().num_qubits(), 8);
        assert_eq!(by_name("bv", 100).unwrap().len(), 299);
        assert_eq!(by_name("im", 10).unwrap().num_qubits(), 10);
        assert!(by_name("urf2_277", 0).is_ok());
        assert!(by_name("nonexistent", 4).is_err());
    }
}
