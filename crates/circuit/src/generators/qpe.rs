//! Quantum phase estimation.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use std::f64::consts::PI;

/// Quantum phase estimation with `precision` counting qubits estimating
/// the eigenphase `phase` (in turns) of a single-qubit diagonal unitary
/// on one target qubit.
///
/// Structure: H layer on the counting register, controlled powers
/// `U^(2^k)` (each a controlled phase — one two-qubit gate), then the
/// inverse QFT on the counting register. QPE is one of the exponential-
/// speedup applications the paper's introduction motivates; its
/// communication pattern is a fan-in onto the target plus the QFT's
/// all-to-all cascade.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `precision < 2`.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::qpe::qpe;
///
/// let c = qpe(8, 0.375)?;
/// assert_eq!(c.num_qubits(), 9); // 8 counting + 1 target
/// # Ok::<(), autobraid_circuit::CircuitError>(())
/// ```
pub fn qpe(precision: u32, phase: f64) -> Result<Circuit, CircuitError> {
    if precision < 2 {
        return Err(CircuitError::InvalidSize(format!(
            "qpe needs precision >= 2, got {precision}"
        )));
    }
    let n = precision + 1;
    let target = precision;
    let mut c = Circuit::named(n, format!("qpe{precision}"));
    for q in 0..precision {
        c.h(q);
    }
    c.x(target); // eigenstate preparation (|1⟩ of a diagonal unitary)
    for k in 0..precision {
        // Controlled-U^(2^k): phase kickback of 2^k * phase turns.
        let angle = 2.0 * PI * phase * f64::from(1u32 << k.min(30));
        c.cphase(angle, k, target);
    }
    // Inverse QFT on the counting register.
    for i in (0..precision).rev() {
        for j in (i + 1..precision).rev() {
            let angle = -PI / f64::from(1u32 << (j - i).min(30));
            c.cphase(angle, j, i);
        }
        c.h(i);
    }
    for q in 0..precision {
        c.measure(q);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_budget() {
        let p = 10u32;
        let c = qpe(p, 0.25).unwrap();
        // H(p) + X + controlled powers (p) + iQFT (p(p-1)/2 cp + p H) +
        // measures (p).
        let expected = p + 1 + p + p * (p - 1) / 2 + p + p;
        assert_eq!(c.len() as u32, expected);
        assert_eq!(c.two_qubit_count() as u32, p + p * (p - 1) / 2);
    }

    #[test]
    fn has_fanin_and_cascade() {
        use crate::layers::ParallelismProfile;
        let c = qpe(8, 0.1).unwrap();
        let profile = ParallelismProfile::analyze(&c);
        assert!(profile.layer_count() > 8, "iQFT cascade is deep");
    }

    #[test]
    fn rejects_tiny() {
        assert!(qpe(1, 0.5).is_err());
        assert!(qpe(2, 0.5).is_ok());
    }
}
