//! Cuccaro ripple-carry adder.

use crate::circuit::Circuit;
use crate::error::CircuitError;

/// The Cuccaro ripple-carry adder computing `b += a` over two `bits`-bit
/// registers with one ancilla carry and one carry-out qubit
/// (`2·bits + 2` qubits total).
///
/// Layout: `[carry_in, a0, b0, a1, b1, …, carry_out]` so the MAJ/UMA
/// ladder touches only nearby qubits — reversible arithmetic of exactly
/// the kind the RevLib building blocks package, useful for scheduling
/// tests with realistic locality.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `bits == 0`.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::generators::adder::cuccaro_adder;
///
/// let c = cuccaro_adder(4)?;
/// assert_eq!(c.num_qubits(), 10);
/// # Ok::<(), autobraid_circuit::CircuitError>(())
/// ```
pub fn cuccaro_adder(bits: u32) -> Result<Circuit, CircuitError> {
    if bits == 0 {
        return Err(CircuitError::InvalidSize("adder needs bits >= 1".into()));
    }
    let n = 2 * bits + 2;
    let mut c = Circuit::named(n, format!("add{bits}"));
    let a = |i: u32| 1 + 2 * i; // a_i
    let b = |i: u32| 2 + 2 * i; // b_i
    let carry_in = 0;
    let carry_out = n - 1;

    // MAJ(x, y, z): majority-in-place.
    let maj = |c: &mut Circuit, x: u32, y: u32, z: u32| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    // UMA(x, y, z): un-majority and add.
    let uma = |c: &mut Circuit, x: u32, y: u32, z: u32| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(&mut c, carry_in, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(bits - 1), carry_out);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, carry_in, b(0), a(0));
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_and_gate_counts() {
        let c = cuccaro_adder(8).unwrap();
        assert_eq!(c.num_qubits(), 18);
        // Each MAJ/UMA is 2 CX + 1 Toffoli (6 CX) = 8 CX; 2·bits blocks
        // plus the carry-out CX.
        assert_eq!(c.two_qubit_count() as u32, 16 * 8 + 1);
    }

    #[test]
    fn ripple_carry_is_deep_and_serial() {
        use crate::stats::CircuitStats;
        let c = cuccaro_adder(6).unwrap();
        let stats = CircuitStats::of(&c);
        assert!(stats.depth > 20, "ripple carry is deep: {}", stats.depth);
        // The carry chain serializes most of the circuit: depth stays a
        // large fraction of the gate count.
        assert!(
            stats.depth * 2 > stats.gates,
            "{} depth vs {} gates",
            stats.depth,
            stats.gates
        );
    }

    #[test]
    fn interleaved_layout_keeps_operands_close() {
        let c = cuccaro_adder(6).unwrap();
        let max_span = c
            .gates()
            .iter()
            .filter_map(|g| g.pair())
            .map(|(x, y)| x.abs_diff(y))
            .max()
            .unwrap();
        assert!(max_span <= 3, "MAJ/UMA ladder is local: span {max_span}");
    }

    #[test]
    fn rejects_zero() {
        assert!(cuccaro_adder(0).is_err());
        assert!(cuccaro_adder(1).is_ok());
    }
}
