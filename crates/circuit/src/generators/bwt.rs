//! Binary welded tree walk circuit.

use crate::circuit::Circuit;
use crate::error::CircuitError;

/// Edge list of a welded pair of (possibly incomplete, heap-ordered)
/// binary trees over `n` nodes: nodes `0..a` form tree A, `a..n` form tree
/// B, and the leaves of the two trees are welded pairwise.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 4`.
pub fn welded_tree_edges(n: u32) -> Result<Vec<(u32, u32)>, CircuitError> {
    if n < 4 {
        return Err(CircuitError::InvalidSize(format!(
            "bwt needs n >= 4, got {n}"
        )));
    }
    let a = n / 2;
    let b = n - a;
    let mut edges = Vec::new();
    // Heap-order parent→child edges inside each tree.
    let tree = |base: u32, size: u32, edges: &mut Vec<(u32, u32)>| {
        for i in 0..size {
            for child in [2 * i + 1, 2 * i + 2] {
                if child < size {
                    edges.push((base + i, base + child));
                }
            }
        }
    };
    tree(0, a, &mut edges);
    tree(a, b, &mut edges);
    // Welding: leaves (nodes with no children in heap order) of A join
    // leaves of B cyclically, two welds per leaf as in the welded tree.
    let leaves = |base: u32, size: u32| -> Vec<u32> {
        (0..size)
            .filter(|i| 2 * i + 1 >= size)
            .map(|i| base + i)
            .collect()
    };
    let la = leaves(0, a);
    let lb = leaves(a, b);
    for (k, &leaf) in la.iter().enumerate() {
        let first = lb[k % lb.len()];
        let second = lb[(k + 1) % lb.len()];
        edges.push((leaf, first));
        if second != first {
            edges.push((leaf, second));
        }
    }
    edges.sort();
    edges.dedup();
    Ok(edges)
}

/// Quantum-walk circuit on the binary welded tree: an entry Hadamard on
/// each tree's root followed by one CX per tree/weld edge per walk step.
///
/// The structure is tree-local (low, bounded interference), matching the
/// near-critical-path behaviour the paper reports for BWT. One walk step
/// over `n = 179` qubits lands near the paper's 260 gates.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 4` or `steps == 0`.
pub fn bwt(n: u32, steps: u32) -> Result<Circuit, CircuitError> {
    if steps == 0 {
        return Err(CircuitError::InvalidSize("bwt needs steps >= 1".into()));
    }
    let edges = welded_tree_edges(n)?;
    let mut c = Circuit::named(n, format!("bwt{n}"));
    c.h(0); // entrance root
    c.h(n / 2); // exit root
    for _ in 0..steps {
        for &(u, v) in &edges {
            c.cx(u, v);
        }
    }
    Ok(c)
}

/// The paper's BWT instances (179 and 240 qubits): a single walk step.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidSize`] if `n < 4`.
pub fn bwt_paper(n: u32) -> Result<Circuit, CircuitError> {
    bwt(n, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_tree_plus_weld() {
        let edges = welded_tree_edges(20).unwrap();
        // Two trees of 10 nodes: 9 + 9 internal edges, plus welds.
        let internal = edges
            .iter()
            .filter(|&&(u, v)| (u < 10 && v < 10) || (u >= 10 && v >= 10))
            .count();
        assert_eq!(internal, 18);
        assert!(edges.len() > internal, "weld edges exist");
    }

    #[test]
    fn paper_sizes_are_close() {
        let c179 = bwt_paper(179).unwrap();
        assert!((230..=300).contains(&c179.len()), "bwt179: {}", c179.len());
        let c240 = bwt_paper(240).unwrap();
        assert!((320..=420).contains(&c240.len()), "bwt240: {}", c240.len());
    }

    #[test]
    fn every_node_is_touched() {
        let n = 30;
        let edges = welded_tree_edges(n).unwrap();
        let mut seen = vec![false; n as usize];
        for (u, v) in edges {
            seen[u as usize] = true;
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "welded tree is connected over all qubits"
        );
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(bwt(3, 1).is_err());
        assert!(bwt(16, 0).is_err());
    }
}
