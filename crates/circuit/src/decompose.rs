//! Decompositions of composite gates into the braided gate set.

use crate::circuit::Circuit;
use crate::gate::QubitId;

/// Appends the standard Clifford+T Toffoli decomposition (6 CX, 7 T/T†,
/// 2 H) to `circuit`.
///
/// This is the textbook network used when lowering reversible (MCT)
/// netlists such as the RevLib building-block benchmarks.
///
/// # Panics
///
/// Panics if the three operands are not pairwise distinct or out of range.
pub fn ccx_into(circuit: &mut Circuit, c0: QubitId, c1: QubitId, target: QubitId) {
    assert!(
        c0 != c1 && c0 != target && c1 != target,
        "ccx operands must be distinct"
    );
    circuit
        .h(target)
        .cx(c1, target)
        .tdg(target)
        .cx(c0, target)
        .t(target)
        .cx(c1, target)
        .tdg(target)
        .cx(c0, target)
        .t(c1)
        .t(target)
        .h(target)
        .cx(c0, c1)
        .t(c0)
        .tdg(c1)
        .cx(c0, c1);
}

/// Appends a multi-controlled X with `controls.len()` controls using a
/// linear chain of Toffolis over the supplied ancilla qubits.
///
/// Requires `ancillas.len() >= controls.len().saturating_sub(2)`. With zero
/// or one control this degenerates to X or CX.
///
/// # Panics
///
/// Panics if too few ancillas are supplied or operands overlap.
pub fn mcx_into(
    circuit: &mut Circuit,
    controls: &[QubitId],
    ancillas: &[QubitId],
    target: QubitId,
) {
    match controls {
        [] => {
            circuit.x(target);
        }
        [c] => {
            circuit.cx(*c, target);
        }
        [c0, c1] => {
            ccx_into(circuit, *c0, *c1, target);
        }
        _ => {
            let needed = controls.len() - 2;
            assert!(
                ancillas.len() >= needed,
                "mcx with {} controls needs {} ancillas, got {}",
                controls.len(),
                needed,
                ancillas.len()
            );
            // Compute the AND-chain into ancillas, apply, then uncompute.
            ccx_into(circuit, controls[0], controls[1], ancillas[0]);
            for i in 2..controls.len() - 1 {
                ccx_into(circuit, controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            ccx_into(
                circuit,
                *controls.last().expect("nonempty"),
                ancillas[needed - 1],
                target,
            );
            for i in (2..controls.len() - 1).rev() {
                ccx_into(circuit, controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            ccx_into(circuit, controls[0], controls[1], ancillas[0]);
        }
    }
}

/// Appends a SWAP expressed as its three-CX implementation (paper Fig. 11)
/// instead of the native `Swap` gate. Used by tests that check the two are
/// charged identically.
pub fn swap_as_cx_into(circuit: &mut Circuit, a: QubitId, b: QubitId) {
    circuit.cx(a, b).cx(b, a).cx(a, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn ccx_gate_budget() {
        let mut c = Circuit::new(3);
        ccx_into(&mut c, 0, 1, 2);
        assert_eq!(c.two_qubit_count(), 6);
        assert_eq!(c.len(), 15);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn ccx_rejects_duplicates() {
        let mut c = Circuit::new(3);
        ccx_into(&mut c, 0, 0, 2);
    }

    #[test]
    fn mcx_degenerate_cases() {
        let mut c = Circuit::new(4);
        mcx_into(&mut c, &[], &[], 3);
        assert_eq!(*c.gate(0), Gate::single(crate::gate::SingleKind::X, 3));
        mcx_into(&mut c, &[1], &[], 3);
        assert_eq!(*c.gate(1), Gate::cx(1, 3));
    }

    #[test]
    fn mcx_three_controls_uses_ancilla() {
        let mut c = Circuit::new(5);
        mcx_into(&mut c, &[0, 1, 2], &[3], 4);
        // 3 Toffolis: compute, apply; plus 1 uncompute = 3 total here
        // (chain of length 1): ccx(0,1,a) ccx(2,a,t) ccx(0,1,a).
        assert_eq!(c.two_qubit_count(), 18);
    }

    #[test]
    fn mcx_four_controls() {
        let mut c = Circuit::new(7);
        mcx_into(&mut c, &[0, 1, 2, 3], &[4, 5], 6);
        // 5 Toffolis (2 compute + 1 apply + 2 uncompute) × 6 CX each.
        assert_eq!(c.two_qubit_count(), 30);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn mcx_requires_ancillas() {
        let mut c = Circuit::new(5);
        mcx_into(&mut c, &[0, 1, 2, 3], &[], 4);
    }

    #[test]
    fn swap_as_three_cx() {
        let mut c = Circuit::new(2);
        swap_as_cx_into(&mut c, 0, 1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.two_qubit_count(), 3);
    }
}
