//! Gate dependence DAG, frontier tracking, and critical-path analysis.
//!
//! Two gates depend on each other iff they share an operand qubit; the DAG
//! keeps only the immediate (per-qubit last-writer) edges. The *frontier*
//! of ready gates drives every scheduler in the workspace, and the weighted
//! critical path is the paper's "CP" ideal execution time.

use crate::circuit::{Circuit, GateId};
use crate::gate::Gate;
use std::collections::VecDeque;

/// Immediate-dependence DAG of a circuit.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::circuit::Circuit;
/// use autobraid_circuit::dag::DependenceDag;
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2).h(2);
/// let dag = DependenceDag::new(&c);
/// assert_eq!(dag.predecessors(0), &[] as &[usize]);
/// assert_eq!(dag.predecessors(1), &[0]);       // cx(0,1) waits on h(0)
/// assert_eq!(dag.predecessors(2), &[1]);       // cx(1,2) waits on cx(0,1)
/// assert_eq!(dag.depth(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DependenceDag {
    predecessors: Vec<Vec<GateId>>,
    successors: Vec<Vec<GateId>>,
}

impl DependenceDag {
    /// Builds the DAG in `O(gates × operands)`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut predecessors: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut successors: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<GateId>> = vec![None; circuit.num_qubits() as usize];

        for (id, gate) in circuit.iter() {
            for q in gate.qubits() {
                if let Some(prev) = last_on_qubit[q as usize] {
                    // A two-qubit gate may repeat a predecessor if both
                    // operands last touched the same gate; dedupe.
                    if !predecessors[id].contains(&prev) {
                        predecessors[id].push(prev);
                        successors[prev].push(id);
                    }
                }
                last_on_qubit[q as usize] = Some(id);
            }
        }
        DependenceDag {
            predecessors,
            successors,
        }
    }

    /// Builds the *commutation-relaxed* DAG: gates acting in the same
    /// basis on every shared qubit (see [`crate::commutation::commutes`])
    /// are unordered, so e.g. all controlled-phase gates of a QFT become
    /// mutually concurrent. Edges are a subset of what topological
    /// ordering requires: per qubit, maximal runs of mutually commuting
    /// gates form unordered sets, and each set fully depends on the
    /// previous one.
    ///
    /// ```
    /// use autobraid_circuit::circuit::Circuit;
    /// use autobraid_circuit::dag::DependenceDag;
    ///
    /// let mut c = Circuit::new(3);
    /// c.cx(0, 1).cx(0, 2); // shared control: commute
    /// assert_eq!(DependenceDag::new(&c).depth(), 2);
    /// assert_eq!(DependenceDag::with_commutation(&c).depth(), 1);
    /// ```
    pub fn with_commutation(circuit: &Circuit) -> Self {
        use crate::commutation::commutes;
        let n = circuit.len();
        let mut predecessors: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut successors: Vec<Vec<GateId>> = vec![Vec::new(); n];
        // Per qubit: the previous (closed) commuting set and the current
        // (open) one. A new gate joining the current set depends on all of
        // the previous set; a non-commuting gate closes the current set.
        let qubits = circuit.num_qubits() as usize;
        let mut prev_set: Vec<Vec<GateId>> = vec![Vec::new(); qubits];
        let mut cur_set: Vec<Vec<GateId>> = vec![Vec::new(); qubits];

        let add_edge = |from: GateId,
                        to: GateId,
                        predecessors: &mut Vec<Vec<GateId>>,
                        successors: &mut Vec<Vec<GateId>>| {
            if !predecessors[to].contains(&from) {
                predecessors[to].push(from);
                successors[from].push(to);
            }
        };

        for (id, gate) in circuit.iter() {
            for q in gate.qubits() {
                let qi = q as usize;
                let joins = cur_set[qi].iter().all(|&g| commutes(circuit.gate(g), gate));
                if !joins {
                    prev_set[qi] = std::mem::take(&mut cur_set[qi]);
                }
                for &p in &prev_set[qi] {
                    add_edge(p, id, &mut predecessors, &mut successors);
                }
                cur_set[qi].push(id);
            }
        }
        for preds in &mut predecessors {
            preds.sort_unstable();
        }
        for succs in &mut successors {
            succs.sort_unstable();
        }
        DependenceDag {
            predecessors,
            successors,
        }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.predecessors.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.predecessors.is_empty()
    }

    /// Immediate predecessors of `gate`.
    pub fn predecessors(&self, gate: GateId) -> &[GateId] {
        &self.predecessors[gate]
    }

    /// Immediate successors of `gate`.
    pub fn successors(&self, gate: GateId) -> &[GateId] {
        &self.successors[gate]
    }

    /// Gates with no predecessors.
    pub fn roots(&self) -> Vec<GateId> {
        (0..self.len())
            .filter(|&g| self.predecessors[g].is_empty())
            .collect()
    }

    /// Unweighted DAG depth: the number of dependence levels (0 for an
    /// empty circuit).
    pub fn depth(&self) -> usize {
        self.asap_levels().into_iter().max().map_or(0, |d| d + 1)
    }

    /// As-soon-as-possible level of every gate (roots are level 0).
    pub fn asap_levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.len()];
        // Program order is a topological order by construction.
        for g in 0..self.len() {
            for &p in &self.predecessors[g] {
                level[g] = level[g].max(level[p] + 1);
            }
        }
        level
    }

    /// Weighted critical-path length: the maximum, over all dependence
    /// chains, of the summed gate weights. This is the paper's ideal "CP"
    /// execution time when `weight` maps each gate to its latency.
    ///
    /// ```
    /// # use autobraid_circuit::circuit::Circuit;
    /// # use autobraid_circuit::dag::DependenceDag;
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1);
    /// let dag = DependenceDag::new(&c);
    /// let cp = dag.critical_path_weight(&c, |g| if g.is_two_qubit() { 2 } else { 1 });
    /// assert_eq!(cp, 3);
    /// ```
    pub fn critical_path_weight(&self, circuit: &Circuit, weight: impl Fn(&Gate) -> u64) -> u64 {
        let mut finish = vec![0u64; self.len()];
        let mut best = 0;
        for g in 0..self.len() {
            let start = self.predecessors[g]
                .iter()
                .map(|&p| finish[p])
                .max()
                .unwrap_or(0);
            finish[g] = start + weight(circuit.gate(g));
            best = best.max(finish[g]);
        }
        best
    }
}

/// Incremental frontier over a [`DependenceDag`]: tracks which gates are
/// ready (all predecessors completed), lets a scheduler complete them in
/// any order, and surfaces newly released gates.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::circuit::Circuit;
/// use autobraid_circuit::dag::{DependenceDag, Frontier};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(1).cx(0, 1);
/// let dag = DependenceDag::new(&c);
/// let mut frontier = Frontier::new(&dag);
/// let mut ready = frontier.ready().to_vec();
/// ready.sort();
/// assert_eq!(ready, vec![0, 1]);
/// frontier.complete(0);
/// frontier.complete(1);
/// assert_eq!(frontier.ready(), &[2]);
/// frontier.complete(2);
/// assert!(frontier.is_drained());
/// ```
#[derive(Debug, Clone)]
pub struct Frontier<'a> {
    dag: &'a DependenceDag,
    remaining_preds: Vec<usize>,
    ready: Vec<GateId>,
    completed: Vec<bool>,
    outstanding: usize,
}

impl<'a> Frontier<'a> {
    /// Starts a frontier with every root gate ready.
    pub fn new(dag: &'a DependenceDag) -> Self {
        let remaining_preds: Vec<usize> =
            (0..dag.len()).map(|g| dag.predecessors(g).len()).collect();
        let ready = dag.roots();
        Frontier {
            dag,
            remaining_preds,
            ready,
            completed: vec![false; dag.len()],
            outstanding: dag.len(),
        }
    }

    /// The currently ready gates, in release order.
    pub fn ready(&self) -> &[GateId] {
        &self.ready
    }

    /// Whether every gate has been completed.
    pub fn is_drained(&self) -> bool {
        self.outstanding == 0
    }

    /// Number of gates not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Marks `gate` complete, releasing any successors whose predecessors
    /// are all done.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not currently ready (still has unmet
    /// dependencies, or already completed).
    pub fn complete(&mut self, gate: GateId) {
        assert!(!self.completed[gate], "gate {gate} completed twice");
        assert_eq!(
            self.remaining_preds[gate], 0,
            "gate {gate} completed before its {} remaining dependencies",
            self.remaining_preds[gate]
        );
        self.completed[gate] = true;
        self.outstanding -= 1;
        if let Some(pos) = self.ready.iter().position(|&g| g == gate) {
            self.ready.swap_remove(pos);
        }
        for &s in self.dag.successors(gate) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.ready.push(s);
            }
        }
    }

    /// Completes every currently ready gate whose circuit gate satisfies
    /// `pred`, returning how many were completed. Useful for draining local
    /// (single-qubit) gates between braiding rounds.
    pub fn complete_all_where(&mut self, circuit: &Circuit, pred: impl Fn(&Gate) -> bool) -> usize {
        let mut count = 0;
        loop {
            let batch: Vec<GateId> = self
                .ready
                .iter()
                .copied()
                .filter(|&g| pred(circuit.gate(g)))
                .collect();
            if batch.is_empty() {
                return count;
            }
            for g in batch {
                self.complete(g);
                count += 1;
            }
        }
    }

    /// A breadth-first topological drain used for validation: repeatedly
    /// completes all ready gates, returning the layer structure.
    pub fn drain_layers(mut self) -> Vec<Vec<GateId>> {
        let mut layers = Vec::new();
        while !self.is_drained() {
            let layer: Vec<GateId> = self.ready.to_vec();
            assert!(
                !layer.is_empty(),
                "frontier stuck with {} outstanding",
                self.outstanding
            );
            for &g in &layer {
                self.complete(g);
            }
            layers.push(layer);
        }
        layers
    }
}

/// Validates that `order` is a topological execution of `circuit`: every
/// gate appears exactly once and after all of its dependence predecessors.
pub fn is_valid_execution_order(circuit: &Circuit, order: &[GateId]) -> bool {
    if order.len() != circuit.len() {
        return false;
    }
    let dag = DependenceDag::new(circuit);
    let mut position = vec![usize::MAX; circuit.len()];
    for (i, &g) in order.iter().enumerate() {
        if g >= circuit.len() || position[g] != usize::MAX {
            return false;
        }
        position[g] = i;
    }
    for g in 0..circuit.len() {
        for &p in dag.predecessors(g) {
            if position[p] >= position[g] {
                return false;
            }
        }
    }
    true
}

/// Longest-path layering by breadth-first traversal — used to cross-check
/// [`DependenceDag::asap_levels`] in tests and by the parallelism analysis.
pub fn bfs_levels(dag: &DependenceDag) -> Vec<usize> {
    let mut indeg: Vec<usize> = (0..dag.len()).map(|g| dag.predecessors(g).len()).collect();
    let mut level = vec![0usize; dag.len()];
    let mut queue: VecDeque<GateId> = dag.roots().into();
    while let Some(g) = queue.pop_front() {
        for &s in dag.successors(g) {
            level[s] = level[s].max(level[g] + 1);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Circuit {
        // Serial chain: every CX shares qubit 0.
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(0, 2).cx(0, 3);
        c
    }

    fn diamond() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0); // 0
        c.cx(0, 1); // 1 depends on 0
        c.cx(0, 2); // 2 depends on 1 (shares qubit 0)
        c.cx(1, 3); // 3 depends on 1
        c
    }

    #[test]
    fn chain_is_fully_serial() {
        let c = chain();
        let dag = DependenceDag::new(&c);
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.roots(), vec![0]);
        assert_eq!(dag.asap_levels(), vec![0, 1, 2]);
    }

    #[test]
    fn diamond_structure() {
        let c = diamond();
        let dag = DependenceDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.predecessors(3), &[1]);
        assert_eq!(dag.successors(1), &[2, 3]);
        assert_eq!(dag.depth(), 3);
    }

    #[test]
    fn duplicate_predecessor_deduped() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let dag = DependenceDag::new(&c);
        assert_eq!(
            dag.predecessors(1),
            &[0],
            "single edge despite two shared qubits"
        );
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn independent_gates_parallel() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let dag = DependenceDag::new(&c);
        assert_eq!(dag.depth(), 1);
        assert_eq!(dag.roots().len(), 2);
    }

    #[test]
    fn critical_path_weighted() {
        let c = diamond();
        let dag = DependenceDag::new(&c);
        // h=1, cx=2: path h→cx→cx = 1+2+2 = 5.
        assert_eq!(
            dag.critical_path_weight(&c, |g| if g.is_two_qubit() { 2 } else { 1 }),
            5
        );
        // Uniform weights: equals depth.
        assert_eq!(dag.critical_path_weight(&c, |_| 1), 3);
    }

    #[test]
    fn empty_circuit_dag() {
        let c = Circuit::new(3);
        let dag = DependenceDag::new(&c);
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.critical_path_weight(&c, |_| 1), 0);
    }

    #[test]
    fn frontier_releases_in_dependence_order() {
        let c = diamond();
        let dag = DependenceDag::new(&c);
        let mut f = Frontier::new(&dag);
        assert_eq!(f.ready(), &[0]);
        f.complete(0);
        assert_eq!(f.ready(), &[1]);
        f.complete(1);
        let mut r = f.ready().to_vec();
        r.sort();
        assert_eq!(r, vec![2, 3]);
        f.complete(3);
        f.complete(2);
        assert!(f.is_drained());
    }

    #[test]
    #[should_panic(expected = "before its")]
    fn frontier_rejects_early_completion() {
        let c = chain();
        let dag = DependenceDag::new(&c);
        let mut f = Frontier::new(&dag);
        f.complete(2);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn frontier_rejects_double_completion() {
        let c = chain();
        let dag = DependenceDag::new(&c);
        let mut f = Frontier::new(&dag);
        f.complete(0);
        // Re-completing a done gate: remaining_preds is 0 but completed.
        f.complete(0);
    }

    #[test]
    fn frontier_complete_all_where() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).h(0);
        let dag = DependenceDag::new(&c);
        let mut f = Frontier::new(&dag);
        // Drains h(0), h(1); the trailing h is blocked behind the CX.
        let done = f.complete_all_where(&c, |g| !g.is_two_qubit());
        assert_eq!(done, 2);
        assert_eq!(f.ready(), &[2]);
    }

    #[test]
    fn drain_layers_matches_asap() {
        let c = diamond();
        let dag = DependenceDag::new(&c);
        let layers = Frontier::new(&dag).drain_layers();
        assert_eq!(layers.len(), dag.depth());
        let asap = dag.asap_levels();
        for (level, layer) in layers.iter().enumerate() {
            for &g in layer {
                assert_eq!(asap[g], level);
            }
        }
    }

    #[test]
    fn bfs_levels_agree_with_asap() {
        let c = diamond();
        let dag = DependenceDag::new(&c);
        assert_eq!(bfs_levels(&dag), dag.asap_levels());
    }

    #[test]
    fn commutation_dag_flattens_shared_control_fanout() {
        // BV-style fan-in: all CXs share the target — X-basis on the
        // shared qubit, so they all commute.
        let mut c = Circuit::new(5);
        for q in 0..4 {
            c.cx(q, 4);
        }
        assert_eq!(DependenceDag::new(&c).depth(), 4);
        assert_eq!(DependenceDag::with_commutation(&c).depth(), 1);
    }

    #[test]
    fn commutation_dag_respects_barriers() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(1).cx(2, 1);
        let dag = DependenceDag::with_commutation(&c);
        // H on qubit 1 separates the two CXs.
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
    }

    #[test]
    fn commutation_dag_widens_qft_layers() {
        // QFT depth is pinned by the H gates (2n - 1 alternating sets),
        // but commuting controlled-phase cascades concentrate into much
        // wider layers — more routing freedom per step.
        let c = crate::generators::qft::qft(16).unwrap();
        let plain = DependenceDag::new(&c);
        let relaxed = DependenceDag::with_commutation(&c);
        assert!(relaxed.depth() <= plain.depth());
        let max_width = |dag: &DependenceDag| {
            let levels = dag.asap_levels();
            let mut counts = vec![0usize; dag.depth()];
            for &l in &levels {
                counts[l] += 1;
            }
            counts.into_iter().max().unwrap_or(0)
        };
        assert!(
            max_width(&relaxed) >= 2 * max_width(&plain) - 2,
            "commutation should widen layers: {} vs {}",
            max_width(&relaxed),
            max_width(&plain)
        );
    }

    #[test]
    fn commutation_dag_is_executable() {
        let c = crate::generators::qft::qft(10).unwrap();
        let dag = DependenceDag::with_commutation(&c);
        let layers = Frontier::new(&dag).drain_layers();
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, c.len(), "frontier drains every gate");
    }

    #[test]
    fn commutation_set_boundaries_are_transitive() {
        // z(0), x(0), z(0): the two Z gates do NOT commute past the X, so
        // depth must be 3 even though z-z commute pairwise.
        let mut c = Circuit::new(1);
        c.z(0).x(0).z(0);
        assert_eq!(DependenceDag::with_commutation(&c).depth(), 3);
    }

    #[test]
    fn execution_order_validation() {
        let c = diamond();
        assert!(is_valid_execution_order(&c, &[0, 1, 2, 3]));
        assert!(is_valid_execution_order(&c, &[0, 1, 3, 2]));
        assert!(
            !is_valid_execution_order(&c, &[1, 0, 2, 3]),
            "dependency violated"
        );
        assert!(!is_valid_execution_order(&c, &[0, 1, 2]), "missing gate");
        assert!(
            !is_valid_execution_order(&c, &[0, 0, 2, 3]),
            "duplicate gate"
        );
    }
}
