//! Gate commutation rules for relaxed dependence analysis.
//!
//! The paper's "theoretically concurrent" CX gates come from the plain
//! shared-qubit dependence DAG. A standard compiler refinement (and a
//! natural extension of AutoBraid's parallelism analysis) notices that
//! many gate pairs *commute* even on shared qubits — all diagonal (Z-type)
//! operations commute with each other, as do X-type operations — which
//! widens every layer. In the QFT all controlled-phase gates mutually
//! commute, roughly halving the dependence depth.
//!
//! [`crate::dag::DependenceDag::with_commutation`] builds the relaxed DAG
//! from these rules; the core crate exposes it as an opt-in scheduling
//! mode and an ablation benchmark.

use crate::gate::{Gate, QubitId, SingleKind, TwoKind};

/// How a gate acts on one of its qubits, for commutation purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Basis {
    /// Diagonal in the computational basis (Z, S, T, Rz, CZ/CP on either
    /// qubit, CX on its control).
    Z,
    /// X-type (X, Rx, CX on its target).
    X,
    /// Anything else (H, Y, Ry, SWAP, measurement): assume non-commuting.
    Other,
}

/// The action basis of `gate` on qubit `q`.
///
/// # Panics
///
/// Panics if `gate` does not act on `q`.
pub fn basis_on(gate: &Gate, q: QubitId) -> Basis {
    assert!(gate.acts_on(q), "{gate} does not act on qubit {q}");
    match *gate {
        Gate::Single { kind, .. } => match kind {
            SingleKind::Z
            | SingleKind::S
            | SingleKind::Sdg
            | SingleKind::T
            | SingleKind::Tdg
            | SingleKind::Rz(_) => Basis::Z,
            SingleKind::X | SingleKind::Rx(_) => Basis::X,
            SingleKind::Y | SingleKind::Ry(_) | SingleKind::H | SingleKind::Measure => Basis::Other,
        },
        Gate::Two { kind, control, .. } => match kind {
            TwoKind::Cz | TwoKind::CPhase(_) => Basis::Z,
            TwoKind::Cx => {
                if q == control {
                    Basis::Z
                } else {
                    Basis::X
                }
            }
            TwoKind::Swap => Basis::Other,
        },
    }
}

/// Whether two gates commute, assuming they share at least one qubit:
/// they must act in the *same* non-`Other` basis on every shared qubit.
/// (Gates with no shared qubit trivially commute; callers in the DAG
/// builder only ask about sharing pairs.)
///
/// # Examples
///
/// ```
/// use autobraid_circuit::commutation::commutes;
/// use autobraid_circuit::Gate;
///
/// // Two CX gates sharing their control commute…
/// assert!(commutes(&Gate::cx(0, 1), &Gate::cx(0, 2)));
/// // …and sharing their target commutes too…
/// assert!(commutes(&Gate::cx(1, 0), &Gate::cx(2, 0)));
/// // …but control-meets-target does not.
/// assert!(!commutes(&Gate::cx(0, 1), &Gate::cx(1, 2)));
/// ```
pub fn commutes(g1: &Gate, g2: &Gate) -> bool {
    for q in g1.qubits() {
        if !g2.acts_on(q) {
            continue;
        }
        match (basis_on(g1, q), basis_on(g2, q)) {
            (Basis::Z, Basis::Z) | (Basis::X, Basis::X) => {}
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_gates_commute() {
        let cp1 = Gate::two(TwoKind::CPhase(0.3), 0, 1);
        let cp2 = Gate::two(TwoKind::CPhase(0.7), 1, 2);
        assert!(commutes(&cp1, &cp2));
        let cz = Gate::two(TwoKind::Cz, 0, 2);
        assert!(commutes(&cp1, &cz));
        let t = Gate::single(SingleKind::T, 1);
        assert!(commutes(&cp1, &t));
        let rz = Gate::single(SingleKind::Rz(0.1), 0);
        assert!(commutes(&cz, &rz));
    }

    #[test]
    fn cx_commutation_cases() {
        assert!(commutes(&Gate::cx(0, 1), &Gate::cx(0, 2)), "shared control");
        assert!(commutes(&Gate::cx(1, 0), &Gate::cx(2, 0)), "shared target");
        assert!(
            !commutes(&Gate::cx(0, 1), &Gate::cx(1, 2)),
            "control meets target"
        );
        assert!(
            !commutes(&Gate::cx(0, 1), &Gate::cx(1, 0)),
            "both roles swapped"
        );
        // CX target is X-type: commutes with X there, not with Z there.
        assert!(commutes(&Gate::cx(0, 1), &Gate::single(SingleKind::X, 1)));
        assert!(!commutes(&Gate::cx(0, 1), &Gate::single(SingleKind::T, 1)));
        // CX control is Z-type.
        assert!(commutes(
            &Gate::cx(0, 1),
            &Gate::single(SingleKind::Rz(0.5), 0)
        ));
        assert!(!commutes(&Gate::cx(0, 1), &Gate::single(SingleKind::X, 0)));
    }

    #[test]
    fn hadamard_never_commutes_on_shared() {
        let h = Gate::single(SingleKind::H, 0);
        assert!(!commutes(&h, &Gate::cx(0, 1)));
        assert!(!commutes(&h, &Gate::single(SingleKind::Z, 0)));
        assert!(!commutes(&h, &Gate::single(SingleKind::X, 0)));
    }

    #[test]
    fn measurement_is_a_barrier() {
        let m = Gate::single(SingleKind::Measure, 2);
        assert!(!commutes(&m, &Gate::single(SingleKind::Z, 2)));
        assert!(!commutes(&m, &Gate::cx(2, 3)));
    }

    #[test]
    fn disjoint_gates_trivially_commute() {
        assert!(commutes(&Gate::cx(0, 1), &Gate::cx(2, 3)));
    }

    #[test]
    fn commutation_is_symmetric() {
        let gates = [
            Gate::cx(0, 1),
            Gate::cx(1, 0),
            Gate::cx(0, 2),
            Gate::two(TwoKind::Cz, 0, 1),
            Gate::single(SingleKind::T, 0),
            Gate::single(SingleKind::H, 1),
            Gate::single(SingleKind::X, 1),
        ];
        for a in &gates {
            for b in &gates {
                assert_eq!(commutes(a, b), commutes(b, a), "{a} vs {b}");
            }
        }
    }
}
