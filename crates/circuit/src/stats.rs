//! Summary statistics used by reports and the evaluation harness.

use crate::circuit::Circuit;
use crate::dag::DependenceDag;
use crate::layers::ParallelismProfile;
use std::fmt;

/// A one-line summary of a circuit's size and communication structure.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::{generators::qft::qft, stats::CircuitStats};
///
/// let stats = CircuitStats::of(&qft(16)?);
/// assert_eq!(stats.qubits, 16);
/// assert_eq!(stats.gates, 136);
/// assert_eq!(stats.two_qubit_gates, 120);
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Benchmark name, if any.
    pub name: String,
    /// Logical qubit count.
    pub qubits: u32,
    /// Total gate count.
    pub gates: usize,
    /// Braided (two-qubit) gate count.
    pub two_qubit_gates: usize,
    /// Dependence-DAG depth in gates.
    pub depth: usize,
    /// Maximum theoretically concurrent CX gates in any ASAP layer.
    pub max_concurrent_cx: usize,
    /// Mean concurrent CX gates per ASAP layer.
    pub mean_concurrent_cx: f64,
}

impl CircuitStats {
    /// Computes all statistics in one pass over the circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let dag = DependenceDag::new(circuit);
        let profile = ParallelismProfile::analyze(circuit);
        CircuitStats {
            name: circuit.name().to_string(),
            qubits: circuit.num_qubits(),
            gates: circuit.len(),
            two_qubit_gates: circuit.two_qubit_count(),
            depth: dag.depth(),
            max_concurrent_cx: profile.max_concurrent_cx(),
            mean_concurrent_cx: profile.mean_concurrent_cx(),
        }
    }

    /// Fraction of gates requiring braiding.
    pub fn communication_fraction(&self) -> f64 {
        if self.gates == 0 {
            0.0
        } else {
            self.two_qubit_gates as f64 / self.gates as f64
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} qubits, {} gates ({} CX, depth {}, ≤{} concurrent CX)",
            if self.name.is_empty() {
                "circuit"
            } else {
                &self.name
            },
            self.qubits,
            self.gates,
            self.two_qubit_gates,
            self.depth,
            self.max_concurrent_cx
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_simple_circuit() {
        let mut c = Circuit::named(4, "demo");
        c.h(0).cx(0, 1).cx(2, 3);
        let s = CircuitStats::of(&c);
        assert_eq!(s.qubits, 4);
        assert_eq!(s.gates, 3);
        assert_eq!(s.two_qubit_gates, 2);
        assert_eq!(s.depth, 2);
        assert_eq!(s.max_concurrent_cx, 1);
        assert!((s.communication_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.to_string().contains("demo"));
    }

    #[test]
    fn empty_circuit_stats() {
        let s = CircuitStats::of(&Circuit::new(2));
        assert_eq!(s.depth, 0);
        assert_eq!(s.communication_fraction(), 0.0);
    }
}
