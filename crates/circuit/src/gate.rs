//! Logical gate set.
//!
//! The universal set assumed by the paper is Clifford+T: single-qubit gates
//! execute locally inside a logical-qubit tile, while every two-qubit gate
//! requires a braiding path between its operand tiles. Phase/T gates
//! consume magic states assumed to be steadily supplied at the data's
//! location (paper §4.1), so they are local too.

use std::fmt;

/// Index of a logical qubit within a circuit (dense, starting at 0).
pub type QubitId = u32;

/// Single-qubit gate kinds (all local to a tile — no routing required).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SingleKind {
    /// Pauli X (logical bit flip).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (logical phase flip).
    Z,
    /// Hadamard — applied within the tile plus surrounding qubits.
    H,
    /// Phase gate S = Z^{1/2}.
    S,
    /// Inverse phase gate.
    Sdg,
    /// T = Z^{1/4}; consumes a magic state (assumed locally available).
    T,
    /// Inverse T.
    Tdg,
    /// X rotation by the given angle (radians).
    Rx(f64),
    /// Y rotation by the given angle (radians).
    Ry(f64),
    /// Z rotation by the given angle (radians).
    Rz(f64),
    /// Computational-basis measurement.
    Measure,
}

impl SingleKind {
    /// Short lowercase mnemonic (matches the OpenQASM spelling).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            SingleKind::X => "x",
            SingleKind::Y => "y",
            SingleKind::Z => "z",
            SingleKind::H => "h",
            SingleKind::S => "s",
            SingleKind::Sdg => "sdg",
            SingleKind::T => "t",
            SingleKind::Tdg => "tdg",
            SingleKind::Rx(_) => "rx",
            SingleKind::Ry(_) => "ry",
            SingleKind::Rz(_) => "rz",
            SingleKind::Measure => "measure",
        }
    }
}

/// Two-qubit gate kinds (every one requires a braiding path).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TwoKind {
    /// Controlled NOT — the braided CX of the paper.
    Cx,
    /// Controlled Z.
    Cz,
    /// Controlled phase by the given angle; counted as a single two-qubit
    /// gate (this matches the paper's QFT gate counts).
    CPhase(f64),
    /// SWAP of two logical qubits. Implemented as three CX gates (paper
    /// Fig. 11); kept as a distinct kind so schedulers can charge 3 braiding
    /// steps and track the permutation.
    Swap,
}

impl TwoKind {
    /// Short lowercase mnemonic (matches the OpenQASM spelling).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            TwoKind::Cx => "cx",
            TwoKind::Cz => "cz",
            TwoKind::CPhase(_) => "cp",
            TwoKind::Swap => "swap",
        }
    }

    /// Number of braiding steps one of these gates occupies. A SWAP is
    /// three chained CX gates; everything else is one braid.
    pub fn braid_steps(&self) -> u64 {
        match self {
            TwoKind::Swap => 3,
            _ => 1,
        }
    }
}

/// A gate applied to concrete qubits.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::gate::{Gate, SingleKind, TwoKind};
///
/// let g = Gate::two(TwoKind::Cx, 0, 3);
/// assert!(g.is_two_qubit());
/// assert_eq!(g.qubits(), vec![0, 3]);
///
/// let h = Gate::single(SingleKind::H, 2);
/// assert_eq!(h.qubits(), vec![2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// A local single-qubit operation.
    Single {
        /// Which operation.
        kind: SingleKind,
        /// The operand qubit.
        qubit: QubitId,
    },
    /// A two-qubit operation requiring a braiding path.
    Two {
        /// Which operation.
        kind: TwoKind,
        /// Control qubit (first operand for symmetric gates).
        control: QubitId,
        /// Target qubit (second operand for symmetric gates).
        target: QubitId,
    },
}

impl Gate {
    /// Builds a single-qubit gate.
    pub fn single(kind: SingleKind, qubit: QubitId) -> Self {
        Gate::Single { kind, qubit }
    }

    /// Builds a two-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    pub fn two(kind: TwoKind, control: QubitId, target: QubitId) -> Self {
        assert_ne!(control, target, "two-qubit gate operands must differ");
        Gate::Two {
            kind,
            control,
            target,
        }
    }

    /// Shorthand for a CX gate.
    pub fn cx(control: QubitId, target: QubitId) -> Self {
        Gate::two(TwoKind::Cx, control, target)
    }

    /// Whether this gate needs a braiding path.
    #[inline]
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Two { .. })
    }

    /// The operand qubits (one or two entries).
    pub fn qubits(&self) -> Vec<QubitId> {
        match *self {
            Gate::Single { qubit, .. } => vec![qubit],
            Gate::Two {
                control, target, ..
            } => vec![control, target],
        }
    }

    /// Whether `q` is an operand of this gate.
    pub fn acts_on(&self, q: QubitId) -> bool {
        match *self {
            Gate::Single { qubit, .. } => qubit == q,
            Gate::Two {
                control, target, ..
            } => control == q || target == q,
        }
    }

    /// The two operands of a two-qubit gate, or `None` for a local gate.
    pub fn pair(&self) -> Option<(QubitId, QubitId)> {
        match *self {
            Gate::Two {
                control, target, ..
            } => Some((control, target)),
            Gate::Single { .. } => None,
        }
    }

    /// The largest operand qubit index.
    pub fn max_qubit(&self) -> QubitId {
        match *self {
            Gate::Single { qubit, .. } => qubit,
            Gate::Two {
                control, target, ..
            } => control.max(target),
        }
    }

    /// Remaps operand qubits through `f` (used when relabelling circuits).
    ///
    /// # Panics
    ///
    /// Panics if the remap collapses a two-qubit gate's operands.
    pub fn map_qubits(&self, mut f: impl FnMut(QubitId) -> QubitId) -> Gate {
        match *self {
            Gate::Single { kind, qubit } => Gate::Single {
                kind,
                qubit: f(qubit),
            },
            Gate::Two {
                kind,
                control,
                target,
            } => Gate::two(kind, f(control), f(target)),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::Single { kind, qubit } => match kind {
                SingleKind::Rx(a) | SingleKind::Ry(a) | SingleKind::Rz(a) => {
                    write!(f, "{}({a}) q[{qubit}]", kind.mnemonic())
                }
                _ => write!(f, "{} q[{qubit}]", kind.mnemonic()),
            },
            Gate::Two {
                kind,
                control,
                target,
            } => match kind {
                TwoKind::CPhase(a) => write!(f, "cp({a}) q[{control}], q[{target}]"),
                _ => write!(f, "{} q[{control}], q[{target}]", kind.mnemonic()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_and_arity() {
        let g = Gate::cx(1, 4);
        assert!(g.is_two_qubit());
        assert_eq!(g.qubits(), vec![1, 4]);
        assert_eq!(g.pair(), Some((1, 4)));
        assert_eq!(g.max_qubit(), 4);

        let s = Gate::single(SingleKind::T, 7);
        assert!(!s.is_two_qubit());
        assert_eq!(s.pair(), None);
        assert_eq!(s.max_qubit(), 7);
    }

    #[test]
    #[should_panic(expected = "operands must differ")]
    fn rejects_equal_operands() {
        let _ = Gate::cx(3, 3);
    }

    #[test]
    fn acts_on() {
        let g = Gate::two(TwoKind::Cz, 2, 5);
        assert!(g.acts_on(2));
        assert!(g.acts_on(5));
        assert!(!g.acts_on(3));
    }

    #[test]
    fn swap_costs_three_braids() {
        assert_eq!(TwoKind::Swap.braid_steps(), 3);
        assert_eq!(TwoKind::Cx.braid_steps(), 1);
        assert_eq!(TwoKind::CPhase(0.5).braid_steps(), 1);
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::cx(0, 1).map_qubits(|q| q + 10);
        assert_eq!(g.pair(), Some((10, 11)));
    }

    #[test]
    #[should_panic(expected = "operands must differ")]
    fn map_qubits_rejects_collapse() {
        let _ = Gate::cx(0, 1).map_qubits(|_| 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::cx(0, 1).to_string(), "cx q[0], q[1]");
        assert_eq!(Gate::single(SingleKind::H, 2).to_string(), "h q[2]");
        assert_eq!(
            Gate::single(SingleKind::Rz(0.5), 2).to_string(),
            "rz(0.5) q[2]"
        );
    }
}
