//! Communication-parallelism analysis (AutoBraid stage 1).
//!
//! Partitions a circuit into ASAP dependence layers and reports how many
//! CX (two-qubit) gates are *theoretically concurrent* at each step — the
//! quantity the paper uses to distinguish low-parallelism programs (BV)
//! from communication-heavy ones (Ising, QFT).

use crate::circuit::{Circuit, GateId};
use crate::dag::DependenceDag;

/// ASAP layering of a circuit with per-layer communication statistics.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::circuit::Circuit;
/// use autobraid_circuit::layers::ParallelismProfile;
///
/// // Ising-style even/odd coupling: n/2 concurrent CX gates per layer.
/// let mut c = Circuit::new(6);
/// c.cx(0, 1).cx(2, 3).cx(4, 5);
/// let profile = ParallelismProfile::analyze(&c);
/// assert_eq!(profile.max_concurrent_cx(), 3);
/// assert_eq!(profile.layer_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelismProfile {
    layers: Vec<Vec<GateId>>,
    cx_per_layer: Vec<usize>,
}

impl ParallelismProfile {
    /// Computes the ASAP layering and per-layer CX counts.
    pub fn analyze(circuit: &Circuit) -> Self {
        let dag = DependenceDag::new(circuit);
        let levels = dag.asap_levels();
        let depth = levels.iter().max().map_or(0, |d| d + 1);
        let mut layers: Vec<Vec<GateId>> = vec![Vec::new(); depth];
        for (g, &lvl) in levels.iter().enumerate() {
            layers[lvl].push(g);
        }
        let cx_per_layer = layers
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .filter(|&&g| circuit.gate(g).is_two_qubit())
                    .count()
            })
            .collect();
        ParallelismProfile {
            layers,
            cx_per_layer,
        }
    }

    /// Gate ids at each ASAP level.
    pub fn layers(&self) -> &[Vec<GateId>] {
        &self.layers
    }

    /// Number of dependence levels.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of two-qubit gates in each layer.
    pub fn cx_per_layer(&self) -> &[usize] {
        &self.cx_per_layer
    }

    /// Maximum number of theoretically concurrent CX gates in any layer.
    pub fn max_concurrent_cx(&self) -> usize {
        self.cx_per_layer.iter().copied().max().unwrap_or(0)
    }

    /// Mean number of concurrent CX gates per layer (0 for empty circuits).
    pub fn mean_concurrent_cx(&self) -> f64 {
        if self.cx_per_layer.is_empty() {
            return 0.0;
        }
        self.cx_per_layer.iter().sum::<usize>() as f64 / self.cx_per_layer.len() as f64
    }

    /// Whether the program has meaningful communication parallelism: some
    /// layer carries more than one CX. (BV-style programs return `false`;
    /// braiding for them never congests.)
    pub fn has_cx_parallelism(&self) -> bool {
        self.max_concurrent_cx() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_bv_like_has_no_parallelism() {
        // BV: every CX shares the target qubit — zero CX parallelism.
        let mut c = Circuit::new(5);
        for q in 0..4 {
            c.cx(q, 4);
        }
        let p = ParallelismProfile::analyze(&c);
        assert_eq!(p.max_concurrent_cx(), 1);
        assert!(!p.has_cx_parallelism());
        assert_eq!(p.layer_count(), 4);
    }

    #[test]
    fn ising_like_has_wide_layers() {
        let mut c = Circuit::new(10);
        for q in (0..10).step_by(2) {
            c.cx(q, q + 1);
        }
        for q in (1..9).step_by(2) {
            c.cx(q, q + 1);
        }
        let p = ParallelismProfile::analyze(&c);
        assert_eq!(p.layer_count(), 2);
        assert_eq!(p.cx_per_layer(), &[5, 4]);
        assert_eq!(p.max_concurrent_cx(), 5);
        assert!(p.has_cx_parallelism());
    }

    #[test]
    fn single_qubit_gates_do_not_count_as_cx() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cx(0, 1);
        let p = ParallelismProfile::analyze(&c);
        assert_eq!(p.cx_per_layer(), &[0, 1]);
        assert!((p.mean_concurrent_cx() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_profile() {
        let p = ParallelismProfile::analyze(&Circuit::new(4));
        assert_eq!(p.layer_count(), 0);
        assert_eq!(p.max_concurrent_cx(), 0);
        assert_eq!(p.mean_concurrent_cx(), 0.0);
        assert!(!p.has_cx_parallelism());
    }

    #[test]
    fn layers_partition_all_gates() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(2, 3).cx(1, 2).measure(3);
        let p = ParallelismProfile::analyze(&c);
        let total: usize = p.layers().iter().map(Vec::len).sum();
        assert_eq!(total, c.len());
    }
}
