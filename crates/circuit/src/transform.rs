//! Peephole circuit transformations.
//!
//! Simple, always-safe rewrites applied before scheduling: adjacent
//! inverse pairs cancel, consecutive Z-rotations on one qubit merge, and
//! near-zero rotations drop. Fewer gates — especially fewer two-qubit
//! gates — mean fewer braiding steps; every rewrite here is verified
//! against the state-vector simulator in the test suite.

use crate::circuit::Circuit;
use crate::gate::{Gate, SingleKind, TwoKind};

/// Whether two adjacent gates cancel to the identity.
fn are_inverse(a: &Gate, b: &Gate) -> bool {
    match (a, b) {
        (
            Gate::Single {
                kind: k1,
                qubit: q1,
            },
            Gate::Single {
                kind: k2,
                qubit: q2,
            },
        ) if q1 == q2 => matches!(
            (k1, k2),
            (SingleKind::X, SingleKind::X)
                | (SingleKind::Y, SingleKind::Y)
                | (SingleKind::Z, SingleKind::Z)
                | (SingleKind::H, SingleKind::H)
                | (SingleKind::S, SingleKind::Sdg)
                | (SingleKind::Sdg, SingleKind::S)
                | (SingleKind::T, SingleKind::Tdg)
                | (SingleKind::Tdg, SingleKind::T)
        ),
        (
            Gate::Two {
                kind: k1,
                control: c1,
                target: t1,
            },
            Gate::Two {
                kind: k2,
                control: c2,
                target: t2,
            },
        ) => match (k1, k2) {
            (TwoKind::Cx, TwoKind::Cx) => c1 == c2 && t1 == t2,
            // CZ and SWAP are symmetric in their operands.
            (TwoKind::Cz, TwoKind::Cz) | (TwoKind::Swap, TwoKind::Swap) => {
                (c1 == c2 && t1 == t2) || (c1 == t2 && t1 == c2)
            }
            _ => false,
        },
        _ => false,
    }
}

/// Merges two adjacent gates into one, when a merged form exists.
fn merged(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (
            Gate::Single {
                kind: SingleKind::Rz(t1),
                qubit: q1,
            },
            Gate::Single {
                kind: SingleKind::Rz(t2),
                qubit: q2,
            },
        ) if q1 == q2 => Some(Gate::single(SingleKind::Rz(t1 + t2), *q1)),
        (
            Gate::Single {
                kind: SingleKind::Rx(t1),
                qubit: q1,
            },
            Gate::Single {
                kind: SingleKind::Rx(t2),
                qubit: q2,
            },
        ) if q1 == q2 => Some(Gate::single(SingleKind::Rx(t1 + t2), *q1)),
        (
            Gate::Single {
                kind: SingleKind::Ry(t1),
                qubit: q1,
            },
            Gate::Single {
                kind: SingleKind::Ry(t2),
                qubit: q2,
            },
        ) if q1 == q2 => Some(Gate::single(SingleKind::Ry(t1 + t2), *q1)),
        (
            Gate::Two {
                kind: TwoKind::CPhase(t1),
                control: c1,
                target: t1q,
            },
            Gate::Two {
                kind: TwoKind::CPhase(t2),
                control: c2,
                target: t2q,
            },
        ) if (c1 == c2 && t1q == t2q) || (c1 == t2q && t1q == c2) => {
            Some(Gate::two(TwoKind::CPhase(t1 + t2), *c1, *t1q))
        }
        _ => None,
    }
}

/// Whether a gate is a rotation by (numerically) zero.
fn is_trivial_rotation(gate: &Gate, epsilon: f64) -> bool {
    match *gate {
        Gate::Single {
            kind: SingleKind::Rx(t) | SingleKind::Ry(t) | SingleKind::Rz(t),
            ..
        } => t.abs() < epsilon,
        Gate::Two {
            kind: TwoKind::CPhase(t),
            ..
        } => t.abs() < epsilon,
        _ => false,
    }
}

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransformStats {
    /// Adjacent inverse pairs removed (counts pairs).
    pub cancelled_pairs: usize,
    /// Rotation pairs merged into one gate.
    pub merged_rotations: usize,
    /// Near-zero rotations dropped.
    pub dropped_rotations: usize,
}

impl TransformStats {
    /// Total gates eliminated.
    pub fn gates_removed(&self) -> usize {
        2 * self.cancelled_pairs + self.merged_rotations + self.dropped_rotations
    }
}

/// Applies cancellation, rotation merging, and trivial-rotation removal to
/// a fixpoint (each pass enables the next: merged rotations may become
/// trivial, removals may expose new inverse pairs).
///
/// Adjacency is *per-qubit-pair*: gates cancel/merge when no intervening
/// gate touches any of their qubits.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::{transform::optimize, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).cx(0, 1).h(0).rz(0.2, 1).rz(-0.2, 1);
/// let (optimized, stats) = optimize(&c, 1e-12);
/// assert_eq!(optimized.len(), 0);
/// assert!(stats.gates_removed() >= 6);
/// ```
pub fn optimize(circuit: &Circuit, epsilon: f64) -> (Circuit, TransformStats) {
    let mut gates: Vec<Option<Gate>> = circuit.gates().iter().copied().map(Some).collect();
    let mut stats = TransformStats::default();
    let mut changed = true;

    while changed {
        changed = false;
        // Drop trivial rotations first (cheap, enables cancellations).
        for slot in gates.iter_mut() {
            if slot
                .as_ref()
                .is_some_and(|g| is_trivial_rotation(g, epsilon))
            {
                *slot = None;
                stats.dropped_rotations += 1;
                changed = true;
            }
        }
        // Scan for cancelling / merging neighbours: for each live gate,
        // find the next live gate sharing a qubit; if they are mutually
        // adjacent (no interposer on ANY shared qubit), try rules.
        for i in 0..gates.len() {
            let Some(g1) = gates[i] else { continue };
            // Find the next live gate touching any qubit of g1.
            let mut j = i + 1;
            let partner = loop {
                if j >= gates.len() {
                    break None;
                }
                if let Some(g2) = gates[j] {
                    if g1.qubits().iter().any(|&q| g2.acts_on(q)) {
                        break Some(g2);
                    }
                }
                j += 1;
            };
            let Some(g2) = partner else { continue };
            // The rules below require the pair to be adjacent on all of
            // BOTH gates' qubits; since g2 is the first gate touching any
            // of g1's qubits, it remains to check g2's other qubits reach
            // back to g1 unobstructed.
            let unobstructed = g2.qubits().iter().all(|&q| {
                if !g1.acts_on(q) {
                    // A qubit of g2 outside g1: fine for merging rules
                    // only if no gate between i and j touches it — but
                    // our rules only fire when the qubit sets match, so
                    // this case only matters for rejection below.
                    return true;
                }
                ((i + 1)..j).all(|k| gates[k].is_none_or(|g| !g.acts_on(q)))
            });
            if !unobstructed {
                continue;
            }
            let same_qubits = {
                let mut q1 = g1.qubits();
                let mut q2 = g2.qubits();
                q1.sort_unstable();
                q2.sort_unstable();
                q1 == q2
            };
            if !same_qubits {
                continue;
            }
            if are_inverse(&g1, &g2) {
                gates[i] = None;
                gates[j] = None;
                stats.cancelled_pairs += 1;
                changed = true;
            } else if let Some(m) = merged(&g1, &g2) {
                gates[i] = Some(m);
                gates[j] = None;
                stats.merged_rotations += 1;
                changed = true;
            }
        }
    }

    let mut out = Circuit::named(circuit.num_qubits(), circuit.name());
    out.extend(gates.into_iter().flatten());
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::random_circuit;
    use crate::sim::circuits_equivalent;

    const EPS: f64 = 1e-9;

    #[test]
    fn cancels_inverse_pairs() {
        let mut c = Circuit::new(2);
        c.h(0)
            .h(0)
            .x(1)
            .x(1)
            .s(0)
            .sdg(0)
            .cx(0, 1)
            .cx(0, 1)
            .swap(0, 1)
            .swap(1, 0);
        let (opt, stats) = optimize(&c, 1e-12);
        assert!(opt.is_empty(), "{opt}");
        assert_eq!(stats.cancelled_pairs, 5);
    }

    #[test]
    fn interposers_block_cancellation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0); // CX touches qubit 0 between the two H gates
        let (opt, _) = optimize(&c, 1e-12);
        assert_eq!(opt.len(), 3, "nothing may cancel across the CX");
    }

    #[test]
    fn unrelated_gates_between_pairs_are_transparent() {
        let mut c = Circuit::new(3);
        c.h(0).t(2).h(0); // the T on qubit 2 does not obstruct
        let (opt, stats) = optimize(&c, 1e-12);
        assert_eq!(opt.len(), 1);
        assert_eq!(stats.cancelled_pairs, 1);
    }

    #[test]
    fn merges_and_drops_rotations() {
        let mut c = Circuit::new(2);
        c.rz(0.5, 0)
            .rz(-0.5, 0)
            .rx(0.25, 1)
            .rx(0.25, 1)
            .cphase(0.3, 0, 1)
            .cphase(-0.3, 1, 0);
        let (opt, stats) = optimize(&c, 1e-9);
        // rz pair merges to rz(0) → dropped; cp pair merges to cp(0) →
        // dropped; rx pair merges to rx(0.5) → kept.
        assert_eq!(opt.len(), 1);
        assert!(stats.merged_rotations >= 3);
        assert!(stats.dropped_rotations >= 2);
    }

    #[test]
    fn cx_direction_matters() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let (opt, _) = optimize(&c, 1e-12);
        assert_eq!(opt.len(), 2, "reversed CX is not an inverse");
    }

    #[test]
    fn optimization_preserves_semantics_on_random_circuits() {
        for seed in 0..8 {
            let c = random_circuit(5, 80, 0.4, seed).unwrap();
            let (opt, _) = optimize(&c, 1e-12);
            assert!(
                circuits_equivalent(&c, &opt, EPS),
                "seed {seed}: transform changed the unitary"
            );
            assert!(opt.len() <= c.len());
        }
    }

    #[test]
    fn optimization_preserves_rotation_heavy_circuits() {
        use autobraid_telemetry::Rng64;
        let mut rng = Rng64::seed_from_u64(77);
        for _ in 0..5 {
            let mut c = Circuit::new(4);
            for _ in 0..60 {
                match rng.gen_range(0..4u32) {
                    0 => {
                        c.rz(rng.gen_range(-1.0..1.0), rng.gen_range(0..4u32));
                    }
                    1 => {
                        c.cphase(rng.gen_range(-1.0..1.0), 0, rng.gen_range(1..4u32));
                    }
                    2 => {
                        c.h(rng.gen_range(0..4u32));
                    }
                    _ => {
                        let a = rng.gen_range(0..4u32);
                        c.cx(a, (a + 1) % 4);
                    }
                }
            }
            let (opt, _) = optimize(&c, 1e-12);
            assert!(circuits_equivalent(&c, &opt, EPS));
        }
    }

    #[test]
    fn fixpoint_cascades() {
        // Removing the inner pair exposes the outer pair.
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        let (opt, stats) = optimize(&c, 1e-12);
        assert!(opt.is_empty());
        assert_eq!(stats.cancelled_pairs, 2);
    }

    #[test]
    fn shrinks_real_benchmarks_without_changing_them() {
        let c = crate::generators::revlib::build("4gt5_75").unwrap();
        let (opt, _) = optimize(&c, 1e-12);
        assert!(circuits_equivalent(&c, &opt, EPS));
        assert!(opt.len() <= c.len());
    }
}
