//! A pragmatic OpenQASM 2.0 subset reader/writer.
//!
//! Covers the gate set the benchmarks use (`h x y z s sdg t tdg rx ry rz
//! cx cz cp swap ccx measure barrier`) over a single quantum register. This
//! is how externally produced circuits (e.g. Qiskit-exported QFT instances)
//! enter the pipeline.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::{Gate, QubitId, SingleKind, TwoKind};
use std::f64::consts::PI;

/// Parses an OpenQASM 2.0 subset into a [`Circuit`].
///
/// Unsupported constructs produce [`CircuitError::Parse`] with the line
/// number. `barrier` and classical registers are accepted and ignored;
/// `measure q[i] -> c[j]` becomes a measurement gate on `q[i]`.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::qasm;
///
/// let src = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     creg c[2];
///     h q[0];
///     cx q[0], q[1];
///     measure q[0] -> c[0];
/// "#;
/// let circuit = qasm::parse(src)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.len(), 3);
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] on malformed or unsupported input, and
/// [`CircuitError::QubitOutOfRange`] if a gate references a qubit beyond
/// the declared register.
pub fn parse(source: &str) -> Result<Circuit, CircuitError> {
    let mut num_qubits: Option<u32> = None;
    let mut gates: Vec<Gate> = Vec::new();

    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, line_no, &mut num_qubits, &mut gates)?;
        }
    }

    let n = num_qubits.ok_or_else(|| CircuitError::Parse {
        line: 0,
        message: "no qreg declaration found".into(),
    })?;
    Circuit::from_gates(n, gates)
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_statement(
    stmt: &str,
    line: usize,
    num_qubits: &mut Option<u32>,
    gates: &mut Vec<Gate>,
) -> Result<(), CircuitError> {
    let err = |message: String| CircuitError::Parse { line, message };

    let (head, rest) = match stmt.find(|c: char| c.is_whitespace() || c == '(') {
        Some(i) => stmt.split_at(i),
        None => (stmt, ""),
    };
    let rest = rest.trim();

    match head {
        "OPENQASM" | "include" | "creg" | "barrier" => Ok(()),
        "qreg" => {
            let size = parse_index(rest, line)?;
            if num_qubits.replace(size).is_some() {
                return Err(err("multiple qreg declarations are not supported".into()));
            }
            Ok(())
        }
        "measure" => {
            // "q[i] -> c[j]" or bare "q[i]".
            let lhs = rest.split("->").next().unwrap_or(rest).trim();
            let q = parse_qubit(lhs, line)?;
            gates.push(Gate::single(SingleKind::Measure, q));
            Ok(())
        }
        "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" => {
            let q = parse_qubit(rest, line)?;
            let kind = match head {
                "h" => SingleKind::H,
                "x" => SingleKind::X,
                "y" => SingleKind::Y,
                "z" => SingleKind::Z,
                "s" => SingleKind::S,
                "sdg" => SingleKind::Sdg,
                "t" => SingleKind::T,
                _ => SingleKind::Tdg,
            };
            gates.push(Gate::single(kind, q));
            Ok(())
        }
        "rx" | "ry" | "rz" | "u1" | "p" => {
            let (angle, operands) = parse_angle_call(rest, line)?;
            let q = parse_qubit(operands, line)?;
            let kind = match head {
                "rx" => SingleKind::Rx(angle),
                "ry" => SingleKind::Ry(angle),
                _ => SingleKind::Rz(angle),
            };
            gates.push(Gate::single(kind, q));
            Ok(())
        }
        "cx" | "CX" | "cz" | "swap" => {
            let (a, b) = parse_qubit_pair(rest, line)?;
            let kind = match head {
                "cz" => TwoKind::Cz,
                "swap" => TwoKind::Swap,
                _ => TwoKind::Cx,
            };
            if a == b {
                return Err(err(format!(
                    "two-qubit gate with identical operands q[{a}]"
                )));
            }
            gates.push(Gate::two(kind, a, b));
            Ok(())
        }
        "cp" | "cu1" => {
            let (angle, operands) = parse_angle_call(rest, line)?;
            let (a, b) = parse_qubit_pair(operands, line)?;
            if a == b {
                return Err(err(format!(
                    "two-qubit gate with identical operands q[{a}]"
                )));
            }
            gates.push(Gate::two(TwoKind::CPhase(angle), a, b));
            Ok(())
        }
        "ccx" => {
            let qs = parse_qubit_list(rest, line)?;
            if qs.len() != 3 {
                return Err(err(format!("ccx expects 3 operands, got {}", qs.len())));
            }
            // Lower immediately into the braided gate set.
            let mut tmp = Circuit::new(qs.iter().max().unwrap() + 1);
            crate::decompose::ccx_into(&mut tmp, qs[0], qs[1], qs[2]);
            gates.extend_from_slice(tmp.gates());
            Ok(())
        }
        other => Err(err(format!("unsupported statement '{other}'"))),
    }
}

/// Parses `q[i]`.
fn parse_qubit(text: &str, line: usize) -> Result<QubitId, CircuitError> {
    parse_index(text.trim(), line)
}

/// Parses the `n` out of `name[n]`.
fn parse_index(text: &str, line: usize) -> Result<u32, CircuitError> {
    let open = text.find('[');
    let close = text.rfind(']');
    match (open, close) {
        (Some(o), Some(c)) if o < c => {
            text[o + 1..c]
                .trim()
                .parse()
                .map_err(|_| CircuitError::Parse {
                    line,
                    message: format!("bad index in '{text}'"),
                })
        }
        _ => Err(CircuitError::Parse {
            line,
            message: format!("expected name[index], got '{text}'"),
        }),
    }
}

fn parse_qubit_pair(text: &str, line: usize) -> Result<(QubitId, QubitId), CircuitError> {
    let qs = parse_qubit_list(text, line)?;
    if qs.len() == 2 {
        Ok((qs[0], qs[1]))
    } else {
        Err(CircuitError::Parse {
            line,
            message: format!("expected 2 operands, got {} in '{text}'", qs.len()),
        })
    }
}

fn parse_qubit_list(text: &str, line: usize) -> Result<Vec<QubitId>, CircuitError> {
    text.split(',')
        .map(|part| parse_qubit(part, line))
        .collect()
}

/// Splits `(angle) q[..], ...` into the evaluated angle and the operand
/// text.
fn parse_angle_call(rest: &str, line: usize) -> Result<(f64, &str), CircuitError> {
    let rest = rest.trim_start();
    if !rest.starts_with('(') {
        return Err(CircuitError::Parse {
            line,
            message: format!("expected (angle) in '{rest}'"),
        });
    }
    let close = rest.find(')').ok_or_else(|| CircuitError::Parse {
        line,
        message: format!("unterminated angle in '{rest}'"),
    })?;
    let angle = eval_angle(&rest[1..close], line)?;
    Ok((angle, rest[close + 1..].trim()))
}

/// Evaluates the restricted angle grammar: `[-] [k*] pi [/ m]` or a float
/// literal.
fn eval_angle(expr: &str, line: usize) -> Result<f64, CircuitError> {
    let expr = expr.trim().replace(' ', "");
    let err = || CircuitError::Parse {
        line,
        message: format!("cannot evaluate angle '{expr}'"),
    };
    if expr.is_empty() {
        return Err(err());
    }
    let (sign, body) = match expr.strip_prefix('-') {
        Some(b) => (-1.0, b),
        None => (1.0, expr.as_str()),
    };
    if let Ok(v) = body.parse::<f64>() {
        return Ok(sign * v);
    }
    if let Some(pi_pos) = body.find("pi") {
        let (before, after) = (&body[..pi_pos], &body[pi_pos + 2..]);
        let k: f64 = match before.strip_suffix('*') {
            Some(num) => num.parse().map_err(|_| err())?,
            None if before.is_empty() => 1.0,
            None => return Err(err()),
        };
        let m: f64 = match after.strip_prefix('/') {
            Some(num) => num.parse().map_err(|_| err())?,
            None if after.is_empty() => 1.0,
            None => return Err(err()),
        };
        if m == 0.0 {
            return Err(err());
        }
        return Ok(sign * k * PI / m);
    }
    Err(err())
}

/// Serializes a circuit as OpenQASM 2.0. SWAPs and CZ/CP emit their native
/// spellings; re-parsing the output reproduces the circuit.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::{circuit::Circuit, qasm};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let text = qasm::emit(&c);
/// assert_eq!(qasm::parse(&text)?, c);
/// # Ok::<(), autobraid_circuit::error::CircuitError>(())
/// ```
pub fn emit(circuit: &Circuit) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    let _ = writeln!(out, "creg c[{}];", circuit.num_qubits());
    for gate in circuit.gates() {
        match *gate {
            Gate::Single { kind, qubit } => match kind {
                SingleKind::Rx(a) => {
                    let _ = writeln!(out, "rx({a}) q[{qubit}];");
                }
                SingleKind::Ry(a) => {
                    let _ = writeln!(out, "ry({a}) q[{qubit}];");
                }
                SingleKind::Rz(a) => {
                    let _ = writeln!(out, "rz({a}) q[{qubit}];");
                }
                SingleKind::Measure => {
                    let _ = writeln!(out, "measure q[{qubit}] -> c[{qubit}];");
                }
                _ => {
                    let _ = writeln!(out, "{} q[{qubit}];", kind.mnemonic());
                }
            },
            Gate::Two {
                kind,
                control,
                target,
            } => match kind {
                TwoKind::CPhase(a) => {
                    let _ = writeln!(out, "cp({a}) q[{control}], q[{target}];");
                }
                _ => {
                    let _ = writeln!(out, "{} q[{control}], q[{target}];", kind.mnemonic());
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_program() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
                   h q[0];\ncx q[0],q[1];\ncz q[1], q[2];\nswap q[0], q[2];\n\
                   t q[1]; tdg q[2];\nmeasure q[1] -> c[1];\n";
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.len(), 7);
        assert_eq!(c.two_qubit_count(), 3);
    }

    #[test]
    fn parses_angles() {
        let src = "qreg q[2];\nrz(pi/2) q[0];\nrx(-pi/4) q[1];\nry(0.5) q[0];\n\
                   cp(2*pi/8) q[0], q[1];\n";
        let c = parse(src).unwrap();
        match *c.gate(0) {
            Gate::Single {
                kind: SingleKind::Rz(a),
                ..
            } => assert!((a - PI / 2.0).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
        match *c.gate(1) {
            Gate::Single {
                kind: SingleKind::Rx(a),
                ..
            } => assert!((a + PI / 4.0).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
        match *c.gate(3) {
            Gate::Two {
                kind: TwoKind::CPhase(a),
                ..
            } => assert!((a - PI / 4.0).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn parses_ccx_by_lowering() {
        let src = "qreg q[3];\nccx q[0], q[1], q[2];\n";
        let c = parse(src).unwrap();
        assert_eq!(c.two_qubit_count(), 6);
    }

    #[test]
    fn ignores_comments_and_blank_lines() {
        let src = "// header\nqreg q[2]; // register\n\n  h q[0]; cx q[0], q[1];\n";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn error_reports_line() {
        let src = "qreg q[2];\nfrobnicate q[0];\n";
        match parse(src) {
            Err(CircuitError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("frobnicate"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_qreg() {
        assert!(matches!(parse("h q[0];"), Err(CircuitError::Parse { .. })));
    }

    #[test]
    fn rejects_out_of_range() {
        let src = "qreg q[2];\ncx q[0], q[5];\n";
        assert!(matches!(
            parse(src),
            Err(CircuitError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_identical_operands() {
        let src = "qreg q[2];\ncx q[1], q[1];\n";
        assert!(matches!(parse(src), Err(CircuitError::Parse { .. })));
    }

    #[test]
    fn rejects_bad_angle() {
        for bad in ["rz(pi/0) q[0];", "rz(two) q[0];", "rz() q[0];"] {
            let src = format!("qreg q[1];\n{bad}\n");
            assert!(parse(&src).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn emit_roundtrip() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .cphase(PI / 8.0, 1, 2)
            .swap(2, 3)
            .rz(1.25, 3)
            .measure(0);
        let text = emit(&c);
        let back = parse(&text).unwrap();
        assert_eq!(back, c);
    }
}
