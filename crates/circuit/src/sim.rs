//! A small dense state-vector simulator.
//!
//! Not part of the scheduling pipeline — schedulers never simulate — but
//! the test suite uses it to prove *semantic* properties that structural
//! checks cannot: gate decompositions ([`crate::decompose`]) implement
//! the right unitaries, circuit transforms preserve meaning, and QASM
//! round-trips are equivalences, all up to global phase. Practical to
//! ~20 qubits.

use crate::circuit::Circuit;
use crate::gate::{Gate, SingleKind, TwoKind};
use std::f64::consts::FRAC_1_SQRT_2;

/// A complex amplitude.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn phase(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

/// A dense `2^n`-amplitude quantum state.
///
/// # Examples
///
/// ```
/// use autobraid_circuit::{sim::StateVector, Circuit};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let state = StateVector::run(&bell);
/// let probs = state.probabilities();
/// assert!((probs[0b00] - 0.5).abs() < 1e-12);
/// assert!((probs[0b11] - 0.5).abs() < 1e-12);
/// assert!(probs[0b01].abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    amplitudes: Vec<Complex>,
    num_qubits: u32,
}

impl StateVector {
    /// Practical qubit limit (2^24 amplitudes ≈ 256 MiB).
    pub const MAX_QUBITS: u32 = 24;

    /// The all-zeros computational basis state.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds [`StateVector::MAX_QUBITS`].
    pub fn zero(num_qubits: u32) -> Self {
        assert!(
            num_qubits <= Self::MAX_QUBITS,
            "{num_qubits} qubits exceed the dense-simulation limit"
        );
        let mut amplitudes = vec![Complex::ZERO; 1usize << num_qubits];
        amplitudes[0] = Complex::ONE;
        StateVector {
            amplitudes,
            num_qubits,
        }
    }

    /// Runs `circuit` on |0…0⟩ (measurements are ignored — the state stays
    /// pure).
    pub fn run(circuit: &Circuit) -> Self {
        let mut state = StateVector::zero(circuit.num_qubits());
        state.apply_circuit(circuit);
        state
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The raw amplitudes (basis index bit `q` = qubit `q`).
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Applies every gate of `circuit` in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit wider than the state"
        );
        for gate in circuit.gates() {
            self.apply(gate);
        }
    }

    /// Applies one gate. Measurement gates are treated as identity (the
    /// simulator tracks the pre-measurement state).
    pub fn apply(&mut self, gate: &Gate) {
        match *gate {
            Gate::Single { kind, qubit } => self.apply_single(kind, qubit),
            Gate::Two {
                kind,
                control,
                target,
            } => self.apply_two(kind, control, target),
        }
    }

    fn apply_single(&mut self, kind: SingleKind, qubit: u32) {
        let h = Complex::new(FRAC_1_SQRT_2, 0.0);
        let i = Complex::new(0.0, 1.0);
        let ni = Complex::new(0.0, -1.0);
        // Matrix [[a, b], [c, d]] acting on the qubit subspace.
        let (a, b, c, d) = match kind {
            SingleKind::X => (Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO),
            SingleKind::Y => (Complex::ZERO, ni, i, Complex::ZERO),
            SingleKind::Z => (
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::new(-1.0, 0.0),
            ),
            SingleKind::H => (h, h, h, Complex::new(-FRAC_1_SQRT_2, 0.0)),
            SingleKind::S => (Complex::ONE, Complex::ZERO, Complex::ZERO, i),
            SingleKind::Sdg => (Complex::ONE, Complex::ZERO, Complex::ZERO, ni),
            SingleKind::T => (
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::phase(std::f64::consts::FRAC_PI_4),
            ),
            SingleKind::Tdg => (
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::phase(-std::f64::consts::FRAC_PI_4),
            ),
            SingleKind::Rz(t) => (
                Complex::phase(-t / 2.0),
                Complex::ZERO,
                Complex::ZERO,
                Complex::phase(t / 2.0),
            ),
            SingleKind::Rx(t) => {
                let (cos, sin) = ((t / 2.0).cos(), (t / 2.0).sin());
                (
                    Complex::new(cos, 0.0),
                    Complex::new(0.0, -sin),
                    Complex::new(0.0, -sin),
                    Complex::new(cos, 0.0),
                )
            }
            SingleKind::Ry(t) => {
                let (cos, sin) = ((t / 2.0).cos(), (t / 2.0).sin());
                (
                    Complex::new(cos, 0.0),
                    Complex::new(-sin, 0.0),
                    Complex::new(sin, 0.0),
                    Complex::new(cos, 0.0),
                )
            }
            SingleKind::Measure => return, // identity on the pure state
        };
        let mask = 1usize << qubit;
        for idx in 0..self.amplitudes.len() {
            if idx & mask == 0 {
                let lo = self.amplitudes[idx];
                let hi = self.amplitudes[idx | mask];
                self.amplitudes[idx] = a * lo + b * hi;
                self.amplitudes[idx | mask] = c * lo + d * hi;
            }
        }
    }

    fn apply_two(&mut self, kind: TwoKind, control: u32, target: u32) {
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        match kind {
            TwoKind::Cx => {
                for idx in 0..self.amplitudes.len() {
                    if idx & cmask != 0 && idx & tmask == 0 {
                        self.amplitudes.swap(idx, idx | tmask);
                    }
                }
            }
            TwoKind::Cz => {
                for (idx, amp) in self.amplitudes.iter_mut().enumerate() {
                    if idx & cmask != 0 && idx & tmask != 0 {
                        *amp = *amp * Complex::new(-1.0, 0.0);
                    }
                }
            }
            TwoKind::CPhase(t) => {
                let phase = Complex::phase(t);
                for (idx, amp) in self.amplitudes.iter_mut().enumerate() {
                    if idx & cmask != 0 && idx & tmask != 0 {
                        *amp = *amp * phase;
                    }
                }
            }
            TwoKind::Swap => {
                for idx in 0..self.amplitudes.len() {
                    if idx & cmask != 0 && idx & tmask == 0 {
                        self.amplitudes.swap(idx, (idx & !cmask) | tmask);
                    }
                }
            }
        }
    }

    /// Measurement probabilities of every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Whether two states are equal up to global phase (fidelity
    /// `|⟨a|b⟩|² ≈ 1`).
    pub fn approx_eq_up_to_phase(&self, other: &StateVector, tolerance: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        let mut inner = Complex::ZERO;
        for (a, b) in self.amplitudes.iter().zip(&other.amplitudes) {
            inner = inner + a.conj() * *b;
        }
        (inner.norm_sqr() - 1.0).abs() < tolerance
    }

    /// Total probability (should always be ≈ 1; checked in tests).
    pub fn norm(&self) -> f64 {
        self.probabilities().iter().sum()
    }
}

/// Runs two circuits over the same register width and checks equivalence
/// up to global phase.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, tolerance: f64) -> bool {
    let width = a.num_qubits().max(b.num_qubits());
    let mut sa = StateVector::zero(width);
    sa.apply_circuit(a);
    let mut sb = StateVector::zero(width);
    sb.apply_circuit(b);
    sa.approx_eq_up_to_phase(&sb, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose;

    const EPS: f64 = 1e-9;

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = StateVector::run(&c);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < EPS);
        assert!((p[3] - 0.5).abs() < EPS);
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn x_flips_and_h_squares_to_identity() {
        let mut c = Circuit::new(1);
        c.x(0);
        assert!((StateVector::run(&c).probabilities()[1] - 1.0).abs() < EPS);
        let mut hh = Circuit::new(1);
        hh.h(0).h(0);
        assert!(circuits_equivalent(&hh, &Circuit::new(1), EPS));
    }

    #[test]
    fn pauli_algebra() {
        // HZH = X, S² = Z, T² = S.
        let mut hzh = Circuit::new(1);
        hzh.h(0).z(0).h(0);
        let mut x = Circuit::new(1);
        x.x(0);
        assert!(circuits_equivalent(&hzh, &x, EPS));

        let mut ss = Circuit::new(1);
        ss.s(0).s(0);
        let mut z = Circuit::new(1);
        z.z(0);
        assert!(circuits_equivalent(&ss, &z, EPS));

        let mut tt = Circuit::new(1);
        tt.t(0).t(0);
        let mut s = Circuit::new(1);
        s.s(0);
        assert!(circuits_equivalent(&tt, &s, EPS));
    }

    #[test]
    fn inverses_cancel() {
        let mut c = Circuit::new(1);
        c.s(0)
            .sdg(0)
            .t(0)
            .tdg(0)
            .rx(0.7, 0)
            .rx(-0.7, 0)
            .rz(1.1, 0)
            .rz(-1.1, 0);
        assert!(circuits_equivalent(&c, &Circuit::new(1), EPS));
    }

    #[test]
    fn cz_symmetric_and_cphase_pi_is_cz() {
        let mut ab = Circuit::new(2);
        ab.h(0).h(1).cz(0, 1);
        let mut ba = Circuit::new(2);
        ba.h(0).h(1).cz(1, 0);
        assert!(circuits_equivalent(&ab, &ba, EPS));
        let mut cp = Circuit::new(2);
        cp.h(0).h(1).cphase(std::f64::consts::PI, 0, 1);
        assert!(circuits_equivalent(&ab, &cp, EPS));
    }

    #[test]
    fn swap_gate_matches_three_cx() {
        let mut native = Circuit::new(3);
        native.h(0).t(1).cx(0, 2).swap(0, 1);
        let mut lowered = Circuit::new(3);
        lowered.h(0).t(1).cx(0, 2);
        decompose::swap_as_cx_into(&mut lowered, 0, 1);
        assert!(circuits_equivalent(&native, &lowered, EPS));
    }

    #[test]
    fn ccx_decomposition_is_a_toffoli() {
        // Check on all 8 basis states via preparation circuits.
        for input in 0u32..8 {
            let mut c = Circuit::new(3);
            for q in 0..3 {
                if input & (1 << q) != 0 {
                    c.x(q);
                }
            }
            c.ccx(0, 1, 2);
            let s = StateVector::run(&c);
            let expected = if input & 0b011 == 0b011 {
                input ^ 0b100
            } else {
                input
            };
            let p = s.probabilities();
            assert!(
                (p[expected as usize] - 1.0).abs() < EPS,
                "input {input:03b}: probabilities {p:?}"
            );
        }
    }

    #[test]
    fn mcx_matches_truth_table() {
        // Qubit 3 is the ancilla and must start (and end) in |0⟩.
        for input in 0u32..8 {
            let mut c = Circuit::new(5);
            for q in 0..3 {
                if input & (1 << q) != 0 {
                    c.x(q);
                }
            }
            decompose::mcx_into(&mut c, &[0, 1, 2], &[3], 4);
            let s = StateVector::run(&c);
            let controls_on = input == 0b111;
            let expected = u32::from(controls_on) << 4 | input;
            let p = s.probabilities();
            assert!(
                (p[expected as usize] - 1.0).abs() < EPS,
                "input {input:03b}: wrong output (ancilla not restored?)"
            );
        }
    }

    #[test]
    fn commuting_gates_reorder_safely() {
        use crate::commutation::commutes;
        use crate::gate::Gate;
        // For a sample of commuting pairs, both orders give the same state
        // from a generic input.
        let pairs = [
            (Gate::cx(0, 1), Gate::cx(0, 2)),
            (Gate::cx(1, 0), Gate::cx(2, 0)),
            (
                Gate::two(TwoKind::CPhase(0.4), 0, 1),
                Gate::two(TwoKind::CPhase(0.9), 1, 2),
            ),
            (Gate::single(SingleKind::T, 1), Gate::two(TwoKind::Cz, 1, 2)),
        ];
        for (g1, g2) in pairs {
            assert!(commutes(&g1, &g2));
            let mut ab = Circuit::new(3);
            ab.h(0).h(1).h(2).t(0);
            ab.push(g1).push(g2);
            let mut ba = Circuit::new(3);
            ba.h(0).h(1).h(2).t(0);
            ba.push(g2).push(g1);
            assert!(circuits_equivalent(&ab, &ba, EPS), "{g1} vs {g2}");
        }
    }

    #[test]
    fn norm_preserved_by_random_circuits() {
        use crate::generators::random::random_circuit;
        for seed in 0..5 {
            let c = random_circuit(6, 120, 0.5, seed).unwrap();
            let s = StateVector::run(&c);
            assert!((s.norm() - 1.0).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "exceed the dense-simulation limit")]
    fn rejects_huge_registers() {
        let _ = StateVector::zero(30);
    }
}
