//! Process-wide switch that routes hot-path kernels to their reference
//! implementations.
//!
//! The performance-critical kernels (arena A*, incremental interference,
//! incremental annealing objective, bitset bbox tests) each retain a
//! straightforward reference implementation behind
//! `#[cfg(any(test, feature = "reference"))]`. Differential tests flip
//! this switch, run the full pipeline twice, and assert the canonical
//! reports are byte-identical — proving the optimized kernels compute
//! exactly the same function.
//!
//! The flag lives here (rather than in each kernel crate) because every
//! crate already depends on telemetry, and a single switch guarantees a
//! reference-mode run is reference *end to end* rather than per-crate.
//! Reads use `Relaxed` ordering: the flag is toggled only at test
//! boundaries, never mid-search, and carries no data dependencies.

use std::sync::atomic::{AtomicBool, Ordering};

static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Whether kernels should dispatch to their reference implementations.
///
/// Always `false` in production builds: the optimized call sites only
/// consult this under `#[cfg(any(test, feature = "reference"))]`.
#[inline]
pub fn reference_mode() -> bool {
    REFERENCE_MODE.load(Ordering::Relaxed)
}

/// Enables or disables reference-mode dispatch process-wide.
///
/// Returns the previous value so tests can restore it. Tests that flip
/// this should run the pipeline to completion before flipping it back;
/// the switch is process-global, so differential tests serialize on it.
pub fn set_reference_mode(enabled: bool) -> bool {
    REFERENCE_MODE.swap(enabled, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_off_and_round_trips() {
        assert!(!reference_mode());
        let prev = set_reference_mode(true);
        assert!(!prev);
        assert!(reference_mode());
        set_reference_mode(false);
        assert!(!reference_mode());
    }
}
