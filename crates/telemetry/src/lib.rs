//! Zero-dependency observability substrate for the AutoBraid suite.
//!
//! The compiler pipeline (stages: lower → place → schedule → verify;
//! see `DESIGN.md` at the repository root) reports *what* it produced
//! through `ScheduleResult` — this crate reports *why*: hierarchical
//! wall-clock [`Span`]s,
//! monotonic counters, and value histograms, recorded through a cheap
//! [`Recorder`] trait behind thread-local installation.
//!
//! # Design
//!
//! - **Disabled by default, free when disabled.** Instrumented code
//!   calls [`counter`], [`observe`], and [`span`] unconditionally;
//!   when no recorder is installed each call is a thread-local flag
//!   check and returns immediately.
//! - **Installation is scoped.** [`install`] returns an RAII
//!   [`RecorderGuard`]; recorders nest and uninstall on drop, so a
//!   pipeline run can be measured without global state leaking into
//!   the next run.
//! - **Aggregation by default, events on demand.** The bundled
//!   [`MemoryRecorder`] aggregates in place (span totals, counter
//!   sums, histogram reservoirs) and snapshots into a
//!   [`TelemetrySnapshot`] that serializes to the stable
//!   `autobraid.telemetry/v1` JSON layout documented in
//!   `docs/METRICS.md`. The [`TraceRecorder`] instead keeps every
//!   timestamped span edge and typed [`Decision`] event, exporting to
//!   Chrome trace-event JSON (`autobraid.trace/v1`, loads in Perfetto)
//!   via [`mod@export`] and to a per-step terminal narrative via
//!   [`mod@explain`]. A [`FanoutRecorder`] captures both in one run.
//!
//! The crate also hosts two deterministic utilities the zero-dependency
//! build needs: [`Rng64`], a seeded xoshiro256** PRNG used by circuit
//! generators, annealing, and randomized tests; and [`mod@bench`], a
//! `std`-only micro-benchmark harness used by the bench targets.
//!
//! # Example
//!
//! ```
//! use autobraid_telemetry as telemetry;
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(telemetry::MemoryRecorder::new());
//! {
//!     let _guard = telemetry::install(recorder.clone());
//!     let _run = telemetry::span("run");
//!     for gate in 0..3u64 {
//!         let _step = telemetry::span("step");
//!         telemetry::counter("gates.routed", 1);
//!         telemetry::observe("llg.size", gate as f64);
//!     }
//! }
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter("gates.routed"), 3);
//! assert_eq!(snapshot.span("run/step").unwrap().count, 3);
//! println!("{}", snapshot.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod explain;
pub mod export;
mod flight;
mod json;
mod memory;
mod recorder;
mod reference;
mod request;
mod rng;
mod span;
pub mod trace;
mod window;

pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use json::JsonValue;
pub use memory::{HistogramSummary, MemoryRecorder, SpanStat, TelemetrySnapshot, SCHEMA};
pub use recorder::{current, install, is_enabled, FanoutRecorder, Recorder, RecorderGuard};
pub use reference::{reference_mode, set_reference_mode};
pub use request::{begin_request, current_request, RequestGuard};
pub use rng::{Rng64, SampleRange};
pub use span::Span;
pub use trace::{Decision, Trace, TraceEvent, TraceEventKind, TraceRecorder, TRACE_SCHEMA};
pub use window::{WindowedRecorder, WindowedSnapshot, DEFAULT_WINDOW_SECONDS, METRICS_SCHEMA};

/// Opens a timing span named `name`; the returned [`Span`] reports its
/// wall-clock duration (under the current nesting path) when dropped.
pub fn span(name: &'static str) -> Span {
    Span::enter(name)
}

/// [`span`], but only live when the installed recorder wants
/// fine-grained metrics (see [`fine_metrics_enabled`]). Per-step spans
/// use this so the ambient stack skips their record/path cost; the
/// coarse stage spans (`parse`, `schedule`, `engine`, `verify`) stay
/// on [`span`] and remain visible in lifetime aggregates.
pub fn fine_span(name: &'static str) -> Span {
    Span::enter_fine(name)
}

/// Adds `delta` to the monotonic counter `name` on the installed
/// recorder, if any.
pub fn counter(name: &str, delta: u64) {
    recorder::with_recorder(|r| r.add(name, delta));
}

/// Records one observation of `value` under the histogram `name` on
/// the installed recorder, if any.
pub fn observe(name: &str, value: f64) {
    recorder::with_recorder(|r| r.observe(name, value));
}

/// [`counter`], but only when the installed recorder wants
/// fine-grained metrics (see [`fine_metrics_enabled`]). Inner-loop
/// profiling counters use this so the always-on ambient stack costs
/// nothing on the hot paths.
pub fn fine_counter(name: &str, delta: u64) {
    if recorder::caps().fine_metrics {
        recorder::with_recorder(|r| r.add(name, delta));
    }
}

/// [`observe`], but only when the installed recorder wants
/// fine-grained metrics (see [`fine_metrics_enabled`]).
pub fn fine_observe(name: &str, value: f64) {
    if recorder::caps().fine_metrics {
        recorder::with_recorder(|r| r.observe(name, value));
    }
}

/// Records a typed [`Decision`] event on the installed recorder, if it
/// wants decisions of that class (see [`decisions_enabled`] and
/// [`fine_decisions_enabled`]).
pub fn decision(decision: &Decision) {
    let caps = recorder::caps();
    let wants = if decision.is_fine() {
        caps.fine_decisions
    } else {
        caps.decisions
    };
    if wants {
        recorder::with_recorder(|r| r.record_decision(decision));
    }
}

/// Whether the installed recorder wants decision events.
///
/// Instrumented code uses this to skip *building* decision payloads
/// (string formatting, path serialization) when nothing would record
/// them — the same discipline as [`is_enabled`] for metrics.
pub fn decisions_enabled() -> bool {
    recorder::caps().decisions
}

/// Whether the installed recorder wants *fine-grained* decision events
/// (per-gate route commits, stack peels, A* searches, annealing
/// accepts — see [`Decision::is_fine`]).
///
/// Inner loops guard on this instead of [`decisions_enabled`], so an
/// always-on [`FlightRecorder`] — which records only coarse lifecycle
/// decisions — leaves the hot paths payload-free.
pub fn fine_decisions_enabled() -> bool {
    recorder::caps().fine_decisions
}

/// Whether the installed recorder wants *fine-grained metrics* — the
/// per-search / per-iteration counters and histogram observations from
/// compile inner loops (see [`Recorder::wants_fine_metrics`]).
///
/// Hot paths guard their profiling `counter`/`observe` calls on this
/// instead of [`is_enabled`]: a `--telemetry` request or a trace
/// capture still collects the full profile, while the service's
/// always-on ambient stack (lifetime + windowed + flight) skips the
/// roughly thousand per-compile sink calls those loops would otherwise
/// pay for (`bench observe` enforces the <2% budget).
pub fn fine_metrics_enabled() -> bool {
    recorder::caps().fine_metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Pins the `autobraid.telemetry/v1` JSON layout. If this test
    /// fails the schema changed: update `docs/METRICS.md`, bump
    /// [`SCHEMA`], and only then update the expectation.
    #[test]
    fn json_schema_is_pinned() {
        let rec = Arc::new(MemoryRecorder::new());
        {
            let _guard = install(rec.clone());
            let _outer = span("compile");
            counter("scheduler.steps", 2);
            counter("router.searches", 5);
            observe("router.llg_size", 2.0);
            observe("router.llg_size", 4.0);
        }
        let mut snap = rec.snapshot();
        // Zero the measured wall time so the output is reproducible.
        for s in &mut snap.spans {
            s.total_seconds = 0.0;
        }
        let expected = concat!(
            "{\n",
            "  \"schema\": \"autobraid.telemetry/v1\",\n",
            "  \"spans\": [\n",
            "    {\n",
            "      \"path\": \"compile\",\n",
            "      \"count\": 1,\n",
            "      \"total_seconds\": 0\n",
            "    }\n",
            "  ],\n",
            "  \"counters\": {\n",
            "    \"router.searches\": 5,\n",
            "    \"scheduler.steps\": 2\n",
            "  },\n",
            "  \"histograms\": {\n",
            "    \"router.llg_size\": {\n",
            "      \"count\": 2,\n",
            "      \"sum\": 6,\n",
            "      \"min\": 2,\n",
            "      \"max\": 4,\n",
            "      \"mean\": 3,\n",
            "      \"p50\": 4,\n",
            "      \"p90\": 4,\n",
            "      \"p99\": 4\n",
            "    }\n",
            "  }\n",
            "}",
        );
        assert_eq!(snap.to_json(), expected);
    }

    #[test]
    fn metric_names_cover_all_kinds() {
        let rec = Arc::new(MemoryRecorder::new());
        {
            let _guard = install(rec.clone());
            let _s = span("a");
            counter("b", 1);
            observe("c", 1.0);
        }
        assert_eq!(rec.snapshot().metric_names(), vec!["a", "b", "c"]);
    }
}
