//! Terminal routing explainer: replay an exported trace into a
//! per-braiding-step narrative.
//!
//! [`explain_trace`] consumes the Chrome trace-event JSON written by
//! [`crate::export`] (the `autobraid.trace/v1` layout) and answers
//! "why did step 7 only route 3 of 9 gates" from the file alone: for
//! every braiding step it lists the LLGs formed, the peel order the
//! stack finder chose, each committed route with its length, each
//! deferral with its reason, and any swaps inserted — followed by an
//! ASCII frame of lattice occupancy built from the committed paths.
//! Unknown event names are ignored (the v1 compat rule), so traces
//! from newer producers still explain.

use crate::json::JsonValue;

/// Largest grid side (in cells) that still gets ASCII occupancy
/// frames; bigger lattices print the narrative only.
const MAX_FRAME_SIDE: u64 = 32;

/// Replays Chrome trace-event JSON (`autobraid.trace/v1`) into a
/// human-readable per-step narrative.
///
/// # Errors
///
/// Fails when `chrome_json` is not valid JSON, is not the array form,
/// or contains no events (an empty trace has nothing to explain).
pub fn explain_trace(chrome_json: &str) -> Result<String, String> {
    let parsed = JsonValue::parse(chrome_json)?;
    let events = parsed
        .as_array()
        .ok_or_else(|| "trace is not a JSON array (Chrome trace-event array form)".to_string())?;
    if events.is_empty() {
        return Err("trace contains no events".to_string());
    }

    let mut out = String::new();
    let mut engines = 0usize;
    // Replay per tid: a track is one worker's serial event stream.
    let mut tids: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("tid").and_then(JsonValue::as_u64))
        .collect();
    tids.sort_unstable();
    tids.dedup();

    for tid in tids {
        let track: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("tid").and_then(JsonValue::as_u64) == Some(tid))
            .collect();
        let track_name = track
            .iter()
            .find(|e| name_of(e) == Some("thread_name"))
            .and_then(|e| e.get("args"))
            .and_then(|a| a.get("name"))
            .and_then(JsonValue::as_str)
            .unwrap_or("unnamed");
        engines += explain_track(&mut out, track_name, &track);
    }

    if engines == 0 {
        return Err("trace has no engine.begin event — nothing to explain".to_string());
    }
    Ok(out)
}

fn name_of(event: &JsonValue) -> Option<&str> {
    event.get("name").and_then(JsonValue::as_str)
}

fn arg_u64(event: &JsonValue, key: &str) -> u64 {
    event
        .get("args")
        .and_then(|a| a.get(key))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}

fn arg_str<'a>(event: &'a JsonValue, key: &str) -> &'a str {
    event
        .get("args")
        .and_then(|a| a.get(key))
        .and_then(JsonValue::as_str)
        .unwrap_or("")
}

fn arg_f64(event: &JsonValue, key: &str) -> f64 {
    event
        .get("args")
        .and_then(|a| a.get(key))
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0)
}

/// One step's accumulated decisions, flushed as a narrative section.
#[derive(Default)]
struct StepState {
    step: u64,
    braids: u64,
    locals: u64,
    lines: Vec<String>,
    /// `(label, parsed path vertices)` per committed route.
    committed: Vec<(char, Vec<(u64, u64)>)>,
    commits: usize,
    defers: usize,
}

/// Explains one tid's events; returns how many engine runs it held.
fn explain_track(out: &mut String, track_name: &str, track: &[&JsonValue]) -> usize {
    let mut engines = 0usize;
    let mut grid_side = 0u64;
    let mut step: Option<StepState> = None;
    let mut total_commits = 0usize;
    let mut total_defers = 0usize;
    let mut total_swaps = 0usize;
    let mut anneal_accepts = 0usize;

    for event in track {
        let Some(name) = name_of(event) else { continue };
        match name {
            "job.start" => {
                out.push_str(&format!(
                    "[{track_name}] job {} started\n",
                    arg_str(event, "label")
                ));
            }
            "job.finish" => {
                flush_step(
                    out,
                    &mut step,
                    grid_side,
                    &mut total_commits,
                    &mut total_defers,
                );
                out.push_str(&format!(
                    "[{track_name}] job {} finished ({})\n",
                    arg_str(event, "label"),
                    if event
                        .get("args")
                        .and_then(|a| a.get("ok"))
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false)
                    {
                        "ok"
                    } else {
                        "failed"
                    }
                ));
            }
            "engine.begin" => {
                flush_step(
                    out,
                    &mut step,
                    grid_side,
                    &mut total_commits,
                    &mut total_defers,
                );
                engines += 1;
                grid_side = arg_u64(event, "grid_side");
                out.push_str(&format!(
                    "\n=== [{track_name}] compiling '{}' via {} on a {}x{} grid ===\n",
                    arg_str(event, "circuit"),
                    arg_str(event, "scheduler"),
                    grid_side,
                    grid_side,
                ));
            }
            "step.begin" => {
                flush_step(
                    out,
                    &mut step,
                    grid_side,
                    &mut total_commits,
                    &mut total_defers,
                );
                step = Some(StepState {
                    step: arg_u64(event, "step"),
                    braids: arg_u64(event, "braids"),
                    locals: arg_u64(event, "locals"),
                    ..StepState::default()
                });
            }
            "llg.formed" => {
                if let Some(s) = &mut step {
                    s.lines.push(format!(
                        "llg formed: {} gate(s), bbox {}x{}",
                        arg_u64(event, "gates"),
                        arg_u64(event, "bbox_w"),
                        arg_u64(event, "bbox_h"),
                    ));
                }
            }
            "stack.peel" => {
                if let Some(s) = &mut step {
                    s.lines.push(format!(
                        "peel gate {} (conflict degree {})",
                        arg_u64(event, "gate"),
                        arg_u64(event, "degree"),
                    ));
                }
            }
            "route.commit" => {
                if let Some(s) = &mut step {
                    let label = route_label(s.commits);
                    s.lines.push(format!(
                        "route gate {} committed: {} vertices [{label}]",
                        arg_u64(event, "gate"),
                        arg_u64(event, "len"),
                    ));
                    s.committed
                        .push((label, parse_path(arg_str(event, "path"))));
                    s.commits += 1;
                }
            }
            "route.defer" => {
                if let Some(s) = &mut step {
                    s.lines.push(format!(
                        "route gate {} deferred: {}",
                        arg_u64(event, "gate"),
                        arg_str(event, "reason"),
                    ));
                    s.defers += 1;
                }
            }
            "pathfinder.iteration" => {
                if let Some(s) = &mut step {
                    s.lines.push(format!(
                        "negotiation round {}: {} overused vertex(es), {} gate(s) ripped up (present factor {})",
                        arg_u64(event, "iteration"),
                        arg_u64(event, "overused"),
                        arg_u64(event, "rerouted"),
                        arg_u64(event, "present_factor"),
                    ));
                }
            }
            "strategy.chosen" => {
                if let Some(s) = &mut step {
                    s.lines.push(format!(
                        "strategy: {} handled this layer ({})",
                        arg_str(event, "policy"),
                        arg_str(event, "reason"),
                    ));
                }
            }
            "swap.inserted" => {
                total_swaps += 1;
                if let Some(s) = &mut step {
                    s.lines.push(format!(
                        "swap inserted between qubits {} and {}",
                        arg_u64(event, "a"),
                        arg_u64(event, "b"),
                    ));
                }
            }
            "fault.injected" => {
                let line = format!(
                    "fault injected: {} ({})",
                    arg_str(event, "kind"),
                    arg_str(event, "detail"),
                );
                match &mut step {
                    Some(s) => s.lines.push(line),
                    None => out.push_str(&format!("[{track_name}] {line}\n")),
                }
            }
            "fault.recovered" => {
                let line = format!("fault recovered: {}", arg_str(event, "kind"));
                match &mut step {
                    Some(s) => s.lines.push(line),
                    None => out.push_str(&format!("[{track_name}] {line}\n")),
                }
            }
            "anneal.accept" => {
                anneal_accepts += 1;
                // Keep the first few verbatim; annealing runs accept
                // thousands of moves and the narrative must stay
                // readable.
                if anneal_accepts <= 3 {
                    out.push_str(&format!(
                        "[{track_name}] anneal accepted move (delta {:.3}, temp {:.3})\n",
                        arg_f64(event, "delta"),
                        arg_f64(event, "temp"),
                    ));
                }
            }
            _ => {}
        }
    }
    flush_step(
        out,
        &mut step,
        grid_side,
        &mut total_commits,
        &mut total_defers,
    );

    if engines > 0 {
        out.push_str(&format!(
            "totals [{track_name}]: {total_commits} route(s) committed, \
             {total_defers} deferred, {total_swaps} swap(s)",
        ));
        if anneal_accepts > 0 {
            out.push_str(&format!(", {anneal_accepts} anneal move(s) accepted"));
        }
        out.push('\n');
    }
    engines
}

fn flush_step(
    out: &mut String,
    step: &mut Option<StepState>,
    grid_side: u64,
    total_commits: &mut usize,
    total_defers: &mut usize,
) {
    let Some(s) = step.take() else { return };
    out.push_str(&format!(
        "\nstep {}: {} braid(s) ready, {} local(s)\n",
        s.step, s.braids, s.locals
    ));
    for line in &s.lines {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    if s.braids > 0 {
        out.push_str(&format!(
            "  => routed {} of {} braid(s)\n",
            s.commits, s.braids
        ));
    }
    *total_commits += s.commits;
    *total_defers += s.defers;
    if !s.committed.is_empty() && grid_side > 0 && grid_side <= MAX_FRAME_SIDE {
        render_frame(out, grid_side, &s.committed);
    }
}

/// Commit labels cycle a..z — enough to tell paths apart in a frame.
fn route_label(index: usize) -> char {
    (b'a' + (index % 26) as u8) as char
}

/// Parses the `"r,c r,c ..."` vertex list a `route.commit` carries.
fn parse_path(path: &str) -> Vec<(u64, u64)> {
    path.split_whitespace()
        .filter_map(|pair| {
            let (r, c) = pair.split_once(',')?;
            Some((r.parse().ok()?, c.parse().ok()?))
        })
        .collect()
}

/// Draws lattice occupancy: `.` free vertex, letters = the vertices of
/// that step's committed braid paths (later paths overwrite on
/// crossing, which braids avoid anyway).
fn render_frame(out: &mut String, grid_side: u64, committed: &[(char, Vec<(u64, u64)>)]) {
    let side = (grid_side + 1) as usize; // vertices per side
    let mut frame = vec![vec!['.'; side]; side];
    for (label, path) in committed {
        for &(r, c) in path {
            if let Some(cell) = frame
                .get_mut(r as usize)
                .and_then(|row| row.get_mut(c as usize))
            {
                *cell = *label;
            }
        }
    }
    out.push_str("  occupancy:\n");
    for row in frame {
        out.push_str("    ");
        out.extend(row);
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Decision, TraceRecorder};
    use std::sync::Arc;

    fn sample_chrome_json() -> String {
        let rec = Arc::new(TraceRecorder::new());
        {
            let _guard = crate::install(rec.clone());
            crate::decision(&Decision::EngineBegin {
                scheduler: "autobraid".into(),
                circuit: "demo".into(),
                grid_side: 4,
            });
            crate::decision(&Decision::StepBegin {
                step: 0,
                braids: 2,
                locals: 1,
            });
            crate::decision(&Decision::LlgFormed {
                gates: 2,
                bbox_w: 3,
                bbox_h: 2,
            });
            crate::decision(&Decision::StackPeel { gate: 1, degree: 2 });
            crate::decision(&Decision::RouteCommit {
                gate: 1,
                len: 3,
                path: "0,0 0,1 1,1".into(),
            });
            crate::decision(&Decision::RouteDefer {
                gate: 2,
                reason: "congested",
            });
            crate::decision(&Decision::NegotiationRound {
                iteration: 1,
                overused: 4,
                rerouted: 2,
                present_factor: 2,
            });
            crate::decision(&Decision::StrategyChosen {
                step: 0,
                policy: "pathfinder".into(),
                reason: "dense-interference".into(),
            });
            crate::decision(&Decision::StepBegin {
                step: 1,
                braids: 1,
                locals: 0,
            });
            crate::decision(&Decision::RouteCommit {
                gate: 2,
                len: 4,
                path: "2,0 2,1 2,2 2,3".into(),
            });
            crate::decision(&Decision::SwapInserted { a: 3, b: 5 });
        }
        rec.snapshot().to_chrome_json()
    }

    #[test]
    fn narrative_covers_every_step_and_decision() {
        let narrative = explain_trace(&sample_chrome_json()).unwrap();
        assert!(narrative.contains("compiling 'demo' via autobraid on a 4x4 grid"));
        assert!(narrative.contains("step 0: 2 braid(s) ready, 1 local(s)"));
        assert!(narrative.contains("llg formed: 2 gate(s), bbox 3x2"));
        assert!(narrative.contains("peel gate 1 (conflict degree 2)"));
        assert!(narrative.contains("route gate 1 committed: 3 vertices [a]"));
        assert!(narrative.contains("route gate 2 deferred: congested"));
        assert!(narrative.contains(
            "negotiation round 1: 4 overused vertex(es), 2 gate(s) ripped up (present factor 2)"
        ));
        assert!(narrative.contains("strategy: pathfinder handled this layer (dense-interference)"));
        assert!(narrative.contains("=> routed 1 of 2 braid(s)"));
        assert!(narrative.contains("step 1: 1 braid(s) ready"));
        assert!(narrative.contains("swap inserted between qubits 3 and 5"));
        assert!(narrative.contains("totals"));
        assert!(narrative.contains("2 route(s) committed, 1 deferred, 1 swap(s)"));
    }

    #[test]
    fn occupancy_frame_marks_path_vertices() {
        let narrative = explain_trace(&sample_chrome_json()).unwrap();
        assert!(narrative.contains("occupancy:"));
        // Step 0's committed path 0,0 0,1 1,1 on a 5x5 vertex frame.
        assert!(
            narrative.contains("aa..."),
            "frame row missing: {narrative}"
        );
        assert!(narrative.contains(".a..."));
        // Step 1's path fills row 2 with 'a' (label restarts per step).
        assert!(narrative.contains("aaaa."));
    }

    #[test]
    fn rejects_traces_it_cannot_explain() {
        assert!(explain_trace("not json").is_err());
        assert!(explain_trace("{}").is_err());
        assert!(explain_trace("[]").is_err());
        // Valid array, but no engine.begin anywhere.
        assert!(explain_trace(r#"[{"name":"x","ph":"i","ts":0,"pid":1,"tid":0}]"#).is_err());
    }

    #[test]
    fn unknown_event_names_are_ignored() {
        let mut json = sample_chrome_json();
        // Splice in an event from a hypothetical newer producer.
        json.insert_str(
            1,
            r#"{"name":"future.event","ph":"i","ts":0,"pid":1,"tid":0,"args":{"x":1}},"#,
        );
        let narrative = explain_trace(&json).unwrap();
        assert!(narrative.contains("compiling 'demo'"));
        assert!(!narrative.contains("future.event"));
    }
}
