//! In-memory aggregation: [`MemoryRecorder`] and the
//! [`TelemetrySnapshot`] it produces.

use crate::json::JsonValue;
use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Identifier of the snapshot JSON layout, emitted as the `schema`
/// field. Bump only with a matching update to `docs/METRICS.md` and
/// the pinned snapshot test.
pub const SCHEMA: &str = "autobraid.telemetry/v1";

/// Retained-sample cap per histogram; beyond this the reservoir
/// decimates (keeps every 2nd, then 4th, ... observation), so
/// percentiles stay exact up to the cap and approximate past it.
pub(crate) const SAMPLE_CAP: usize = 8192;

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total: Duration,
}

/// The reservoir-backed histogram shared by [`MemoryRecorder`]
/// (lifetime aggregates) and [`crate::WindowedRecorder`] (per-second
/// buckets) — crate-internal; consumers only ever see
/// [`HistogramSummary`].
#[derive(Default, Clone)]
pub(crate) struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
    /// Keep one observation out of every `2^shift`.
    shift: u32,
}

impl Histogram {
    pub(crate) fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sum += value;
        self.count += 1;
        if (self.count - 1).is_multiple_of(1u64 << self.shift) {
            self.samples.push(value);
            if self.samples.len() >= SAMPLE_CAP {
                let mut keep = 0;
                for i in (0..self.samples.len()).step_by(2) {
                    self.samples[keep] = self.samples[i];
                    keep += 1;
                }
                self.samples.truncate(keep);
                self.shift += 1;
            }
        }
    }

    /// Merges `other` into `self`, reservoir included: exact for
    /// count/sum/min/max, and the percentile reservoir becomes the
    /// concatenation of both sides' retained samples (re-decimated if
    /// the union exceeds the cap). Unlike
    /// [`TelemetrySnapshot::merge_from`] — which only has summaries to
    /// work with — this merge keeps percentiles exact as long as both
    /// inputs were below the cap.
    pub(crate) fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
        self.samples.extend_from_slice(&other.samples);
        self.shift = self.shift.max(other.shift);
        while self.samples.len() >= SAMPLE_CAP {
            let mut keep = 0;
            for i in (0..self.samples.len()).step_by(2) {
                self.samples[keep] = self.samples[i];
                keep += 1;
            }
            self.samples.truncate(keep);
            self.shift += 1;
        }
    }

    pub(crate) fn summary(&self) -> HistogramSummary {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum / self.count as f64
            },
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A [`Recorder`] that aggregates everything in memory.
///
/// Spans aggregate by full path (count + total wall time), counters
/// sum, histograms keep exact count/sum/min/max plus a bounded sample
/// reservoir for percentiles. Call [`MemoryRecorder::snapshot`] at any
/// point to extract the current [`TelemetrySnapshot`].
pub struct MemoryRecorder {
    inner: Mutex<Inner>,
    /// Whether this recorder wants fine-grained (inner-loop) metrics.
    /// True for explicitly-requested recorders, false for the
    /// service's always-on ambient instance ([`MemoryRecorder::ambient`]).
    fine: bool,
}

impl Default for MemoryRecorder {
    fn default() -> MemoryRecorder {
        MemoryRecorder {
            inner: Mutex::default(),
            fine: true,
        }
    }
}

impl MemoryRecorder {
    /// Creates an empty recorder that collects the full profile,
    /// including fine-grained inner-loop metrics.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Creates an empty recorder for always-on ambient use: it declines
    /// fine-grained metrics (see [`crate::fine_metrics_enabled`]) so
    /// compile inner loops skip their profiling counters/observations
    /// entirely, keeping service observability inside its <2% overhead
    /// budget. Lifetime aggregates of spans and coarse metrics are
    /// still collected.
    pub fn ambient() -> MemoryRecorder {
        MemoryRecorder {
            fine: false,
            ..MemoryRecorder::new()
        }
    }

    /// Extracts an immutable aggregate of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().unwrap();
        TelemetrySnapshot {
            spans: inner
                .spans
                .iter()
                .map(|(path, agg)| SpanStat {
                    path: path.clone(),
                    count: agg.count,
                    total_seconds: agg.total.as_secs_f64(),
                })
                .collect(),
            counters: inner.counters.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
        }
    }
}

impl Recorder for MemoryRecorder {
    fn wants_fine_metrics(&self) -> bool {
        self.fine
    }

    fn record_span(&self, path: &str, wall: Duration) {
        let mut inner = self.inner.lock().unwrap();
        let agg = inner.spans.entry(path.to_string()).or_default();
        agg.count += 1;
        agg.total += wall;
    }

    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }
}

/// Aggregate of one span path across all its occurrences.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Slash-joined nesting path, e.g. `pipeline/schedule`.
    pub path: String,
    /// Number of completed occurrences.
    pub count: u64,
    /// Total wall-clock time across occurrences, in seconds.
    pub total_seconds: f64,
}

/// Summary statistics of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median of the retained sample reservoir.
    pub p50: f64,
    /// 90th percentile of the retained sample reservoir.
    pub p90: f64,
    /// 99th percentile of the retained sample reservoir.
    pub p99: f64,
}

/// Point-in-time aggregate extracted from a [`MemoryRecorder`].
///
/// Serializes to the stable `autobraid.telemetry/v1` JSON layout via
/// [`TelemetrySnapshot::to_json`]; the schema is documented in
/// `docs/METRICS.md`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries, sorted by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl TelemetrySnapshot {
    /// Value of the counter `name`, or 0 when it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary for `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Span aggregate whose path equals `path`, if it completed at
    /// least once.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Every distinct metric name in the snapshot: span paths, counter
    /// names, and histogram names, in that order.
    pub fn metric_names(&self) -> Vec<&str> {
        self.spans
            .iter()
            .map(|s| s.path.as_str())
            .chain(self.counters.keys().map(|k| k.as_str()))
            .chain(self.histograms.keys().map(|k| k.as_str()))
            .collect()
    }

    /// Merges `other` into `self`: spans sum by path (count and total
    /// wall time), counters sum by name, histograms combine exactly for
    /// count/sum/min/max/mean and *approximately* for percentiles (the
    /// merged percentile is the observation-count-weighted average of
    /// the inputs' percentiles — the reservoirs backing them are not
    /// retained in a snapshot). The operation is associative and
    /// commutative up to that approximation, so a batch runtime can fold
    /// per-worker snapshots in any order; see `docs/RUNTIME.md`.
    pub fn merge_from(&mut self, other: &TelemetrySnapshot) {
        for span in &other.spans {
            match self.spans.iter_mut().find(|s| s.path == span.path) {
                Some(existing) => {
                    existing.count += span.count;
                    existing.total_seconds += span.total_seconds;
                }
                None => self.spans.push(span.clone()),
            }
        }
        self.spans.sort_by(|a, b| a.path.cmp(&b.path));
        for (name, &value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => {
                    if h.count == 0 {
                        continue;
                    }
                    if mine.count == 0 {
                        *mine = h.clone();
                        continue;
                    }
                    let (n1, n2) = (mine.count as f64, h.count as f64);
                    let total = n1 + n2;
                    mine.p50 = (mine.p50 * n1 + h.p50 * n2) / total;
                    mine.p90 = (mine.p90 * n1 + h.p90 * n2) / total;
                    mine.p99 = (mine.p99 * n1 + h.p99 * n2) / total;
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                    mine.mean = mine.sum / mine.count as f64;
                }
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Folds many snapshots into one with [`TelemetrySnapshot::merge_from`].
    pub fn merged<'a>(snapshots: impl IntoIterator<Item = &'a TelemetrySnapshot>) -> Self {
        let mut out = TelemetrySnapshot::default();
        for snap in snapshots {
            out.merge_from(snap);
        }
        out
    }

    /// Builds the `autobraid.telemetry/v1` JSON tree.
    pub fn to_json_value(&self) -> JsonValue {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                JsonValue::object([
                    ("path", JsonValue::from(s.path.as_str())),
                    ("count", JsonValue::from(s.count)),
                    ("total_seconds", JsonValue::from(s.total_seconds)),
                ])
            })
            .collect::<Vec<_>>();
        let counters = self
            .counters
            .iter()
            .map(|(name, &value)| (name.as_str(), JsonValue::from(value)))
            .collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                (
                    name.as_str(),
                    JsonValue::object([
                        ("count", JsonValue::from(h.count)),
                        ("sum", JsonValue::from(h.sum)),
                        ("min", JsonValue::from(h.min)),
                        ("max", JsonValue::from(h.max)),
                        ("mean", JsonValue::from(h.mean)),
                        ("p50", JsonValue::from(h.p50)),
                        ("p90", JsonValue::from(h.p90)),
                        ("p99", JsonValue::from(h.p99)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        JsonValue::object([
            ("schema", JsonValue::from(SCHEMA)),
            ("spans", JsonValue::Array(spans)),
            ("counters", JsonValue::object(counters)),
            ("histograms", JsonValue::object(histograms)),
        ])
    }

    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate() {
        let rec = MemoryRecorder::new();
        rec.add("a", 2);
        rec.add("b", 1);
        rec.add("a", 3);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn histogram_percentiles_are_exact_below_the_cap() {
        let rec = MemoryRecorder::new();
        // 1..=100 shuffled-ish order (order must not matter).
        for v in (1..=100u64).rev() {
            rec.observe("h", v as f64);
        }
        let snap = rec.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert!((h.p50 - 50.0).abs() <= 1.0);
        assert!((h.p90 - 90.0).abs() <= 1.0);
        assert!((h.p99 - 99.0).abs() <= 1.0);
    }

    #[test]
    fn histogram_reservoir_decimates_but_stays_exact_on_extremes() {
        let rec = MemoryRecorder::new();
        for v in 0..100_000u64 {
            rec.observe("big", v as f64);
        }
        let snap = rec.snapshot();
        let h = snap.histogram("big").unwrap();
        assert_eq!(h.count, 100_000);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 99_999.0);
        // Percentiles are approximate past the cap; 2% tolerance.
        assert!((h.p50 - 50_000.0).abs() < 2_000.0, "p50 = {}", h.p50);
        assert!((h.p90 - 90_000.0).abs() < 2_000.0, "p90 = {}", h.p90);
    }

    #[test]
    fn empty_histogram_summary_is_all_zero() {
        // A histogram with no observations must answer every query
        // with the documented zeros — never panic or divide by zero.
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p90, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_sample_histogram_returns_that_value_everywhere() {
        let rec = MemoryRecorder::new();
        rec.observe("one", 42.5);
        let snap = rec.snapshot();
        let h = snap.histogram("one").unwrap();
        assert_eq!(h.count, 1);
        for value in [h.sum, h.min, h.max, h.mean, h.p50, h.p90, h.p99] {
            assert_eq!(value, 42.5);
        }
    }

    #[test]
    fn reservoir_at_and_past_the_cap_never_panics() {
        // Exactly at the cap, one past it, and far past it: count stays
        // exact and every percentile query stays in range.
        for n in [
            SAMPLE_CAP as u64,
            SAMPLE_CAP as u64 + 1,
            SAMPLE_CAP as u64 * 3,
        ] {
            let mut h = Histogram::default();
            for v in 0..n {
                h.observe(v as f64);
            }
            let s = h.summary();
            assert_eq!(s.count, n);
            assert_eq!(s.min, 0.0);
            assert_eq!(s.max, (n - 1) as f64);
            for p in [s.p50, s.p90, s.p99] {
                assert!(
                    (0.0..=(n - 1) as f64).contains(&p),
                    "n={n}: {p} out of range"
                );
            }
            assert!(
                s.p50 <= s.p90 && s.p90 <= s.p99,
                "n={n}: percentiles unordered"
            );
        }
    }

    #[test]
    fn non_finite_observations_do_not_poison_percentiles() {
        // partial_cmp on NaN falls back to Equal in the sort — queries
        // must still return without panicking.
        let mut h = Histogram::default();
        h.observe(1.0);
        h.observe(f64::NAN);
        h.observe(2.0);
        let s = h.summary();
        assert_eq!(s.count, 3);
        // min/max/mean involve NaN arithmetic, but percentile lookup
        // itself must not panic; p50 comes from the retained samples.
        let _ = (s.p50, s.p90, s.p99);
    }

    #[test]
    fn merge_sums_counters_and_spans() {
        let a = MemoryRecorder::new();
        a.add("shared", 2);
        a.add("only_a", 1);
        a.record_span("compile", Duration::from_millis(10));
        let b = MemoryRecorder::new();
        b.add("shared", 3);
        b.add("only_b", 7);
        b.record_span("compile", Duration::from_millis(5));
        b.record_span("compile/route", Duration::from_millis(1));
        let merged = TelemetrySnapshot::merged([&a.snapshot(), &b.snapshot()]);
        assert_eq!(merged.counter("shared"), 5);
        assert_eq!(merged.counter("only_a"), 1);
        assert_eq!(merged.counter("only_b"), 7);
        let compile = merged.span("compile").unwrap();
        assert_eq!(compile.count, 2);
        assert!((compile.total_seconds - 0.015).abs() < 1e-9);
        assert_eq!(merged.span("compile/route").unwrap().count, 1);
        // Span order stays sorted by path (the v1 layout invariant).
        let paths: Vec<&str> = merged.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["compile", "compile/route"]);
    }

    #[test]
    fn merge_combines_histogram_extremes_exactly() {
        let a = MemoryRecorder::new();
        for v in [1.0, 2.0, 3.0] {
            a.observe("h", v);
        }
        let b = MemoryRecorder::new();
        for v in [10.0, 20.0] {
            b.observe("h", v);
        }
        b.observe("b_only", 5.0);
        let merged = TelemetrySnapshot::merged([&a.snapshot(), &b.snapshot()]);
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 20.0);
        assert!((h.sum - 36.0).abs() < 1e-12);
        assert!((h.mean - 7.2).abs() < 1e-12);
        assert_eq!(merged.histogram("b_only").unwrap().count, 1);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = MemoryRecorder::new();
        a.add("c", 4);
        a.observe("h", 2.0);
        a.record_span("s", Duration::from_millis(1));
        let snap = a.snapshot();
        let merged = TelemetrySnapshot::merged([&snap, &TelemetrySnapshot::default()]);
        assert_eq!(merged, snap);
        let merged = TelemetrySnapshot::merged([&TelemetrySnapshot::default(), &snap]);
        assert_eq!(merged, snap);
    }

    #[test]
    fn metric_names_with_quotes_backslashes_and_controls_roundtrip() {
        // Metric and span names are user-influenced (circuit labels
        // flow into span paths); the JSON writer must escape quotes,
        // backslashes, and control characters so the snapshot stays
        // parseable.
        let rec = MemoryRecorder::new();
        let hostile = "he said \"hi\"\\path\nnewline\ttab\u{1}ctl";
        rec.add(hostile, 3);
        rec.observe(hostile, 1.5);
        rec.record_span(hostile, Duration::from_millis(1));
        let rendered = rec.snapshot().to_json();
        let parsed = JsonValue::parse(&rendered).expect("escaped output parses");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get(hostile))
                .and_then(JsonValue::as_u64),
            Some(3),
            "counter name did not survive the escape/parse roundtrip"
        );
        assert!(parsed
            .get("histograms")
            .and_then(|h| h.get(hostile))
            .is_some());
    }

    #[test]
    fn merge_from_with_both_reservoirs_at_the_cap() {
        // Two snapshots whose histograms each saturated the reservoir:
        // merge_from must keep exact fields exact and produce in-range,
        // ordered percentiles (they are approximate by contract).
        let n = SAMPLE_CAP as u64 * 2;
        let a = MemoryRecorder::new();
        let b = MemoryRecorder::new();
        for v in 0..n {
            a.observe("h", v as f64);
            b.observe("h", (v + n) as f64);
        }
        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.count, 2 * n);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, (2 * n - 1) as f64);
        let expected_sum = (0..2 * n).map(|v| v as f64).sum::<f64>();
        assert!((h.sum - expected_sum).abs() < 1e-6);
        assert!((h.mean - expected_sum / (2 * n) as f64).abs() < 1e-6);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99, "percentiles unordered");
        for p in [h.p50, h.p90, h.p99] {
            assert!((0.0..=(2 * n - 1) as f64).contains(&p));
        }
    }

    #[test]
    fn percentiles_exact_at_cap_minus_one_approximate_at_cap() {
        // The documented boundary (docs/METRICS.md): with cap-1
        // observations nothing has been decimated and percentiles are
        // exact; the observation that fills the reservoir triggers the
        // first decimation, after which percentiles come from every 2nd
        // sample.
        let mut h = Histogram::default();
        for v in 0..(SAMPLE_CAP as u64 - 1) {
            h.observe(v as f64);
        }
        let exact = h.summary();
        let last = (SAMPLE_CAP - 2) as f64;
        assert_eq!(exact.p50, (last * 0.50).round());
        assert_eq!(exact.p90, (last * 0.90).round());
        assert_eq!(exact.p99, (last * 0.99).round());
        // One more observation reaches the cap: decimation halves the
        // reservoir, percentiles become approximate but stay within
        // one decimation stride of the truth.
        h.observe((SAMPLE_CAP - 1) as f64);
        let approx = h.summary();
        assert_eq!(approx.count, SAMPLE_CAP as u64);
        let last = (SAMPLE_CAP - 1) as f64;
        assert!(
            (approx.p50 - last * 0.50).abs() <= 2.0,
            "p50={}",
            approx.p50
        );
        assert!(
            (approx.p99 - last * 0.99).abs() <= 2.0,
            "p99={}",
            approx.p99
        );
    }

    #[test]
    fn histogram_merge_is_exact_below_the_cap() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in 0..100u64 {
            a.observe(v as f64);
            b.observe((v + 100) as f64);
        }
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 200);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 199.0);
        // The merged reservoir holds every observation, so the median
        // is exact (sorted concatenation).
        assert!((s.p50 - 100.0).abs() <= 1.0, "p50={}", s.p50);
    }

    #[test]
    fn span_aggregation_sums_durations() {
        let rec = MemoryRecorder::new();
        rec.record_span("a/b", Duration::from_millis(2));
        rec.record_span("a/b", Duration::from_millis(3));
        rec.record_span("a", Duration::from_millis(7));
        let snap = rec.snapshot();
        let ab = snap.span("a/b").unwrap();
        assert_eq!(ab.count, 2);
        assert!((ab.total_seconds - 0.005).abs() < 1e-9);
        assert_eq!(snap.span("a").unwrap().count, 1);
        assert!(snap.span("zzz").is_none());
    }
}
