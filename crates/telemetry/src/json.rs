//! A minimal JSON document builder (writer only, no parsing).
//!
//! Object keys keep insertion order, so callers control field order
//! and the rendered output is byte-stable for a given input — which is
//! what lets the snapshot test pin the schema.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer, rendered without a fraction.
    Int(i64),
    /// Unsigned integer, rendered without a fraction.
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// String, escaped on render.
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders compact JSON (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON (two-space indent, `\n` newlines).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 prints the shortest round-trip form.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = JsonValue::object([
            ("name", JsonValue::from("q\"0\"")),
            ("n", JsonValue::from(3u64)),
            ("ratio", JsonValue::from(0.5)),
            (
                "steps",
                JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]),
            ),
            ("empty", JsonValue::Array(vec![])),
            ("none", JsonValue::Null),
        ]);
        assert_eq!(
            v.render_compact(),
            r#"{"name":"q\"0\"","n":3,"ratio":0.5,"steps":[1,2],"empty":[],"none":null}"#
        );
        let pretty = v.render_pretty();
        assert!(pretty.starts_with("{\n  \"name\": \"q\\\"0\\\"\",\n  \"n\": 3,"));
        assert!(pretty.ends_with("\n}"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render_compact(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render_compact(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        let rendered = JsonValue::from("a\nb\x01").render_compact();
        let expected = format!("\"a\\nb\\u{:04x}\"", 1);
        assert_eq!(rendered, expected);
    }
}
