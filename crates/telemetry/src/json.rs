//! A minimal JSON document builder and reader.
//!
//! Object keys keep insertion order, so callers control field order
//! and the rendered output is byte-stable for a given input — which is
//! what lets the snapshot test pin the schema. [`JsonValue::parse`] is
//! the matching reader: a small recursive-descent parser used by the
//! trace explainer and the benchmark regression gate to load documents
//! this crate (or a compatible producer) wrote.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer, rendered without a fraction.
    Int(i64),
    /// Unsigned integer, rendered without a fraction.
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// String, escaped on render.
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parses a JSON document.
    ///
    /// Accepts exactly one top-level value surrounded by optional
    /// whitespace. Integers that fit `i64`/`u64` parse to
    /// [`JsonValue::Int`]/[`JsonValue::UInt`]; everything else numeric
    /// parses to [`JsonValue::Float`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` on missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric payload, widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// A non-negative integer payload, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON (two-space indent, `\n` newlines).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 prints the shortest round-trip form.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object_value(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped UTF-8 runs wholesale.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs and lone surrogates are
                            // not produced by this crate's writer;
                            // map unpairable units to U+FFFD.
                            let c = if (0xd800..0xe000).contains(&code) {
                                '\u{fffd}'
                            } else {
                                char::from_u32(code).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = JsonValue::object([
            ("name", JsonValue::from("q\"0\"")),
            ("n", JsonValue::from(3u64)),
            ("ratio", JsonValue::from(0.5)),
            (
                "steps",
                JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]),
            ),
            ("empty", JsonValue::Array(vec![])),
            ("none", JsonValue::Null),
        ]);
        assert_eq!(
            v.render_compact(),
            r#"{"name":"q\"0\"","n":3,"ratio":0.5,"steps":[1,2],"empty":[],"none":null}"#
        );
        let pretty = v.render_pretty();
        assert!(pretty.starts_with("{\n  \"name\": \"q\\\"0\\\"\",\n  \"n\": 3,"));
        assert!(pretty.ends_with("\n}"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render_compact(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render_compact(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        let rendered = JsonValue::from("a\nb\x01").render_compact();
        let expected = format!("\"a\\nb\\u{:04x}\"", 1);
        assert_eq!(rendered, expected);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let v = JsonValue::object([
            ("name", JsonValue::from("q\"0\"\n\t")),
            ("n", JsonValue::from(3u64)),
            ("neg", JsonValue::from(-7i64)),
            ("ratio", JsonValue::from(0.5)),
            (
                "steps",
                JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::Bool(true)]),
            ),
            ("empty", JsonValue::Array(vec![])),
            ("none", JsonValue::Null),
        ]);
        assert_eq!(JsonValue::parse(&v.render_compact()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        assert_eq!(
            JsonValue::parse(r#""aA\n""#).unwrap(),
            JsonValue::from("aA\n")
        );
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(JsonValue::parse("-2.5").unwrap(), JsonValue::Float(-2.5));
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
        assert_eq!(JsonValue::parse("-3").unwrap(), JsonValue::Int(-3));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "nul", "{\"a\" 1}", "1 2", "{]"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_extract_typed_payloads() {
        let v = JsonValue::parse(r#"{"s":"x","b":true,"u":4,"f":2.5,"a":[1]}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("u").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(|a| a.len()),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert!(JsonValue::Null.get("s").is_none());
    }
}
