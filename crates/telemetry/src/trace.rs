//! Event-level tracing: [`TraceRecorder`] and the [`Trace`] it
//! produces.
//!
//! Where [`crate::MemoryRecorder`] aggregates (span totals, counter
//! sums), a [`TraceRecorder`] keeps the *individual* timestamped
//! events: span begin/end with thread tracks, plus typed [`Decision`]
//! events emitted from instrumented scheduler/router/placement code.
//! A trace answers causal questions — which LLGs formed in a step,
//! which gates the stack finder peeled and in what order, which routes
//! committed vs. deferred — that aggregates cannot.
//!
//! Traces export to Chrome trace-event JSON (`autobraid.trace/v1`,
//! loads in Perfetto / `chrome://tracing`) via [`crate::export`] and
//! replay into a per-step terminal narrative via [`crate::explain`].

use crate::json::JsonValue;
use crate::recorder::Recorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifier of the Chrome-trace export layout, emitted in the
/// leading metadata event. Bump only with a matching update to
/// `docs/METRICS.md`.
pub const TRACE_SCHEMA: &str = "autobraid.trace/v1";

/// A typed decision event emitted by instrumented compiler code.
///
/// Decisions are facts about *what the compiler chose*, not how long
/// it took; they export as Perfetto instant events. The enum is
/// non-exhaustive: new decision kinds may appear in later versions
/// (the compat rule in `docs/METRICS.md` — consumers must ignore
/// event names they do not know).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The scheduling engine started on a circuit.
    EngineBegin {
        /// Name of the scheduler strategy driving the run.
        scheduler: String,
        /// Name of the circuit being compiled.
        circuit: String,
        /// Lattice side length, in surface-code cells.
        grid_side: u32,
    },
    /// A braiding step began with this much ready work.
    StepBegin {
        /// Zero-based braiding step index.
        step: u64,
        /// Ready CNOTs that need a braid this step.
        braids: usize,
        /// Ready gates executable locally (no braid needed).
        locals: usize,
    },
    /// The router grouped gates into a long-range-link group.
    LlgFormed {
        /// Number of gates in the group.
        gates: usize,
        /// Bounding-box width, in lattice vertices.
        bbox_w: u32,
        /// Bounding-box height, in lattice vertices.
        bbox_h: u32,
    },
    /// The stack finder peeled a gate out of the conflict graph.
    StackPeel {
        /// Gate id peeled.
        gate: usize,
        /// Conflict-graph max degree at the moment of peeling.
        degree: usize,
    },
    /// A braid path was committed for a gate this step.
    RouteCommit {
        /// Gate id routed.
        gate: usize,
        /// Path length in lattice vertices.
        len: usize,
        /// Space-separated `row,col` vertex list of the braid path.
        path: String,
    },
    /// A gate's routing was deferred to a later step.
    RouteDefer {
        /// Gate id deferred.
        gate: usize,
        /// Why the router gave up this step.
        reason: &'static str,
    },
    /// The scheduler inserted a SWAP between two qubits.
    SwapInserted {
        /// First qubit of the swapped pair.
        a: u32,
        /// Second qubit of the swapped pair.
        b: u32,
    },
    /// The annealer accepted a placement move.
    AnnealAccept {
        /// Objective delta of the accepted move (negative = better).
        delta: f64,
        /// Temperature at acceptance time.
        temp: f64,
    },
    /// One A* search finished (successfully or not).
    ///
    /// Expansion counts measure *work done*, which may vary across
    /// thread counts even though compile outputs are deterministic
    /// (see `docs/RUNTIME.md`).
    AstarSearch {
        /// Nodes expanded before the search ended.
        expansions: u64,
        /// Whether a path was found.
        found: bool,
    },
    /// One negotiation iteration of the PathFinder router finished.
    ///
    /// Emitted once per rip-up-and-reroute round so a trace shows how
    /// congestion drained (or failed to) across the loop.
    NegotiationRound {
        /// Zero-based iteration index within the routing pass.
        iteration: u64,
        /// Vertices still shared by more than one path after this round.
        overused: usize,
        /// Gates ripped up and rerouted this round.
        rerouted: usize,
        /// Present-cost factor in effect during this round.
        present_factor: u64,
    },
    /// A routing policy was chosen for one braiding layer.
    ///
    /// Fixed-strategy runs emit this with their own name; the portfolio
    /// policy records *which* finder it picked and why.
    StrategyChosen {
        /// Zero-based braiding step index.
        step: u64,
        /// Name of the routing policy that handled the layer.
        policy: String,
        /// Short feature-based justification (e.g. `dense-interference`).
        reason: String,
    },
    /// A batch-compile job started on a worker.
    JobStart {
        /// Job label (circuit name or index).
        label: String,
    },
    /// A batch-compile job finished on a worker.
    JobFinish {
        /// Job label (circuit name or index).
        label: String,
        /// Whether the compile succeeded.
        ok: bool,
    },
    /// A dynamic event was injected into a streaming compilation: a
    /// tile failure (a channel vertex died mid-run) or a magic-state
    /// supply stall. The fault taxonomy is documented in
    /// `docs/STREAMING.md`.
    FaultInjected {
        /// Fault taxonomy name (`tile-failure`, `magic-stall`).
        kind: String,
        /// Human-readable locus (vertex coordinates, stall length).
        detail: String,
        /// Zero-based streaming step index at injection time.
        step: u64,
    },
    /// The streaming engine committed a braiding step again after an
    /// injected fault — the schedule survived the event.
    FaultRecovered {
        /// Fault taxonomy name the engine recovered from.
        kind: String,
        /// Zero-based index of the first step committed after the fault.
        step: u64,
    },
    /// A service request entered the system (emitted at frame decode).
    RequestBegin {
        /// Request id, unique per daemon process.
        id: u64,
        /// Wire request kind (`compile`, `session.open`, ...).
        kind: String,
    },
    /// A service request left the system.
    RequestEnd {
        /// Request id, unique per daemon process.
        id: u64,
        /// Outcome: `ok`, or an error kind (`overloaded`, `timeout`,
        /// `internal`, ...).
        outcome: String,
    },
    /// The service report cache answered a compile lookup.
    CacheLookup {
        /// Request id of the compile being served.
        id: u64,
        /// Cache outcome: `hit`, `miss`, or `bypass`.
        status: &'static str,
    },
    /// A streaming session opened on the daemon.
    SessionOpened {
        /// Request id that opened the session.
        id: u64,
    },
    /// A streaming session closed (or was evicted) on the daemon.
    SessionClosed {
        /// Request id that opened the session.
        id: u64,
        /// Braiding steps the session committed before closing.
        steps: u64,
    },
}

impl Decision {
    /// The stable event name this decision exports under.
    pub fn name(&self) -> &'static str {
        match self {
            Decision::EngineBegin { .. } => "engine.begin",
            Decision::StepBegin { .. } => "step.begin",
            Decision::LlgFormed { .. } => "llg.formed",
            Decision::StackPeel { .. } => "stack.peel",
            Decision::RouteCommit { .. } => "route.commit",
            Decision::RouteDefer { .. } => "route.defer",
            Decision::SwapInserted { .. } => "swap.inserted",
            Decision::AnnealAccept { .. } => "anneal.accept",
            Decision::AstarSearch { .. } => "astar.search",
            Decision::NegotiationRound { .. } => "pathfinder.iteration",
            Decision::StrategyChosen { .. } => "strategy.chosen",
            Decision::JobStart { .. } => "job.start",
            Decision::JobFinish { .. } => "job.finish",
            Decision::FaultInjected { .. } => "fault.injected",
            Decision::FaultRecovered { .. } => "fault.recovered",
            Decision::RequestBegin { .. } => "request.begin",
            Decision::RequestEnd { .. } => "request.end",
            Decision::CacheLookup { .. } => "cache.lookup",
            Decision::SessionOpened { .. } => "session.opened",
            Decision::SessionClosed { .. } => "session.closed",
        }
    }

    /// Whether this decision is *fine-grained*: emitted per step, per
    /// gate, or per inner-loop iteration during a compile. Always-on
    /// recorders like [`crate::FlightRecorder`] opt out of fine
    /// decisions via [`crate::Recorder::wants_fine_decisions`], and the
    /// emission sites guard payload construction behind
    /// [`crate::fine_decisions_enabled`], so a hot loop never builds a
    /// payload nobody wants. Only rare lifecycle landmarks are coarse —
    /// engine begin, fault injection/recovery, and the service's
    /// request/session/cache events — which is what keeps the ambient
    /// observability stack inside its <2% overhead budget
    /// (`bench observe`, docs/METRICS.md).
    pub fn is_fine(&self) -> bool {
        !matches!(
            self,
            Decision::EngineBegin { .. }
                | Decision::FaultInjected { .. }
                | Decision::FaultRecovered { .. }
                | Decision::RequestBegin { .. }
                | Decision::RequestEnd { .. }
                | Decision::CacheLookup { .. }
                | Decision::SessionOpened { .. }
                | Decision::SessionClosed { .. }
        )
    }

    /// The decision's fields as a JSON object (the exported `args`).
    pub fn args(&self) -> JsonValue {
        match self {
            Decision::EngineBegin {
                scheduler,
                circuit,
                grid_side,
            } => JsonValue::object([
                ("scheduler", JsonValue::from(scheduler.as_str())),
                ("circuit", JsonValue::from(circuit.as_str())),
                ("grid_side", JsonValue::from(*grid_side)),
            ]),
            Decision::StepBegin {
                step,
                braids,
                locals,
            } => JsonValue::object([
                ("step", JsonValue::from(*step)),
                ("braids", JsonValue::from(*braids)),
                ("locals", JsonValue::from(*locals)),
            ]),
            Decision::LlgFormed {
                gates,
                bbox_w,
                bbox_h,
            } => JsonValue::object([
                ("gates", JsonValue::from(*gates)),
                ("bbox_w", JsonValue::from(*bbox_w)),
                ("bbox_h", JsonValue::from(*bbox_h)),
            ]),
            Decision::StackPeel { gate, degree } => JsonValue::object([
                ("gate", JsonValue::from(*gate)),
                ("degree", JsonValue::from(*degree)),
            ]),
            Decision::RouteCommit { gate, len, path } => JsonValue::object([
                ("gate", JsonValue::from(*gate)),
                ("len", JsonValue::from(*len)),
                ("path", JsonValue::from(path.as_str())),
            ]),
            Decision::RouteDefer { gate, reason } => JsonValue::object([
                ("gate", JsonValue::from(*gate)),
                ("reason", JsonValue::from(*reason)),
            ]),
            Decision::SwapInserted { a, b } => {
                JsonValue::object([("a", JsonValue::from(*a)), ("b", JsonValue::from(*b))])
            }
            Decision::AnnealAccept { delta, temp } => JsonValue::object([
                ("delta", JsonValue::from(*delta)),
                ("temp", JsonValue::from(*temp)),
            ]),
            Decision::AstarSearch { expansions, found } => JsonValue::object([
                ("expansions", JsonValue::from(*expansions)),
                ("found", JsonValue::from(*found)),
            ]),
            Decision::NegotiationRound {
                iteration,
                overused,
                rerouted,
                present_factor,
            } => JsonValue::object([
                ("iteration", JsonValue::from(*iteration)),
                ("overused", JsonValue::from(*overused)),
                ("rerouted", JsonValue::from(*rerouted)),
                ("present_factor", JsonValue::from(*present_factor)),
            ]),
            Decision::StrategyChosen {
                step,
                policy,
                reason,
            } => JsonValue::object([
                ("step", JsonValue::from(*step)),
                ("policy", JsonValue::from(policy.as_str())),
                ("reason", JsonValue::from(reason.as_str())),
            ]),
            Decision::JobStart { label } => {
                JsonValue::object([("label", JsonValue::from(label.as_str()))])
            }
            Decision::JobFinish { label, ok } => JsonValue::object([
                ("label", JsonValue::from(label.as_str())),
                ("ok", JsonValue::from(*ok)),
            ]),
            Decision::FaultInjected { kind, detail, step } => JsonValue::object([
                ("kind", JsonValue::from(kind.as_str())),
                ("detail", JsonValue::from(detail.as_str())),
                ("step", JsonValue::from(*step)),
            ]),
            Decision::FaultRecovered { kind, step } => JsonValue::object([
                ("kind", JsonValue::from(kind.as_str())),
                ("step", JsonValue::from(*step)),
            ]),
            Decision::RequestBegin { id, kind } => JsonValue::object([
                ("id", JsonValue::from(*id)),
                ("kind", JsonValue::from(kind.as_str())),
            ]),
            Decision::RequestEnd { id, outcome } => JsonValue::object([
                ("id", JsonValue::from(*id)),
                ("outcome", JsonValue::from(outcome.as_str())),
            ]),
            Decision::CacheLookup { id, status } => JsonValue::object([
                ("id", JsonValue::from(*id)),
                ("status", JsonValue::from(*status)),
            ]),
            Decision::SessionOpened { id } => JsonValue::object([("id", JsonValue::from(*id))]),
            Decision::SessionClosed { id, steps } => JsonValue::object([
                ("id", JsonValue::from(*id)),
                ("steps", JsonValue::from(*steps)),
            ]),
        }
    }
}

/// What one trace event records.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A timing span opened (full slash-joined path).
    SpanBegin {
        /// Slash-joined nesting path, e.g. `pipeline/schedule`.
        path: String,
    },
    /// A timing span closed (full slash-joined path).
    SpanEnd {
        /// Slash-joined nesting path, e.g. `pipeline/schedule`.
        path: String,
    },
    /// A typed decision event.
    Decision(Decision),
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// Index into [`Trace::tracks`] for the recording thread.
    pub track: usize,
    /// Global record order under the recorder's lock. `(track, seq)`
    /// is the documented normalization sort key: within one track it
    /// recovers temporal order exactly, and it is deterministic for a
    /// given recording (unlike `ts_ns`, which can collide).
    pub seq: u64,
    /// Service request id active on the recording thread (see
    /// [`crate::begin_request`]), or 0 outside any request scope.
    pub request: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// An extracted, immutable event trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Track names (one per thread that recorded), in order of first
    /// appearance.
    pub tracks: Vec<String>,
    /// The recorded events, in global record order.
    pub events: Vec<TraceEvent>,
    /// Events the recorder received but did not keep: `add`/`observe`
    /// calls routed to an event recorder, plus ring-buffer evictions in
    /// a [`crate::FlightRecorder`]. Surfaced as the documented
    /// `trace.dropped` count (see `docs/METRICS.md`).
    pub dropped: u64,
}

impl Trace {
    /// Returns the trace with events sorted by the documented
    /// normalization key `(track, seq)`. Two recordings of the same
    /// single-threaded compile normalize to the same event sequence;
    /// multi-threaded recordings normalize deterministically per
    /// track.
    pub fn normalized(&self) -> Trace {
        let mut out = self.clone();
        out.events.sort_by_key(|e| (e.track, e.seq));
        out
    }

    /// Renders the trace as Chrome trace-event JSON (see
    /// [`crate::export::chrome_trace`]).
    pub fn to_chrome_json(&self) -> String {
        crate::export::chrome_trace(self)
    }
}

#[derive(Default)]
struct TraceInner {
    /// `(thread_key, name)` pairs; index = track id.
    tracks: Vec<(u64, String)>,
    events: Vec<TraceEvent>,
}

/// Process-wide source of stable per-thread keys (thread ids are not
/// ordered or dense; these are).
static NEXT_THREAD_KEY: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_KEY: u64 = NEXT_THREAD_KEY.fetch_add(1, Ordering::Relaxed);
}

/// This thread's stable track key, shared by every event recorder
/// ([`TraceRecorder`], [`crate::FlightRecorder`]) so the same thread
/// maps to the same track in each.
pub(crate) fn thread_key() -> u64 {
    THREAD_KEY.with(|k| *k)
}

/// A [`Recorder`] that keeps every event.
///
/// Install it like any recorder ([`crate::install`] / RAII guard);
/// threads that share the same `Arc` get their own track, named after
/// the recording thread. `add`/`observe` calls are *dropped* —
/// aggregates belong to [`crate::MemoryRecorder`]; combine both with
/// [`crate::FanoutRecorder`] to capture a trace and a snapshot in one
/// run. Each dropped call increments the [`Trace::dropped`] count so
/// the loss is visible in the snapshot instead of silent.
pub struct TraceRecorder {
    epoch: Instant,
    inner: Mutex<TraceInner>,
    dropped: AtomicU64,
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// Creates an empty recorder; timestamps count from now.
    pub fn new() -> TraceRecorder {
        TraceRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Extracts everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock().unwrap();
        Trace {
            tracks: inner.tracks.iter().map(|(_, name)| name.clone()).collect(),
            events: inner.events.clone(),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    fn push(&self, kind: TraceEventKind) {
        let ts_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let key = thread_key();
        let request = crate::current_request();
        let mut inner = self.inner.lock().unwrap();
        let track = match inner.tracks.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                let name = std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{key}"));
                inner.tracks.push((key, name));
                inner.tracks.len() - 1
            }
        };
        let seq = inner.events.len() as u64;
        inner.events.push(TraceEvent {
            ts_ns,
            track,
            seq,
            request,
            kind,
        });
    }
}

impl Recorder for TraceRecorder {
    fn record_span(&self, path: &str, _wall: Duration) {
        self.push(TraceEventKind::SpanEnd {
            path: path.to_string(),
        });
    }

    fn add(&self, _name: &str, _delta: u64) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    fn observe(&self, _name: &str, _value: f64) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    fn record_span_begin(&self, path: &str) {
        self.push(TraceEventKind::SpanBegin {
            path: path.to_string(),
        });
    }

    fn wants_span_events(&self) -> bool {
        true
    }

    fn record_decision(&self, decision: &Decision) {
        self.push(TraceEventKind::Decision(decision.clone()));
    }

    fn wants_decisions(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_span_begin_end_pairs_in_order() {
        let rec = Arc::new(TraceRecorder::new());
        {
            let _guard = crate::install(rec.clone());
            let _outer = crate::span("outer");
            let _inner = crate::span("inner");
        }
        let trace = rec.snapshot();
        let kinds: Vec<String> = trace
            .events
            .iter()
            .map(|e| match &e.kind {
                TraceEventKind::SpanBegin { path } => format!("B:{path}"),
                TraceEventKind::SpanEnd { path } => format!("E:{path}"),
                TraceEventKind::Decision(d) => format!("D:{}", d.name()),
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["B:outer", "B:outer/inner", "E:outer/inner", "E:outer"]
        );
        assert_eq!(trace.tracks.len(), 1);
    }

    #[test]
    fn decisions_are_kept_verbatim() {
        let rec = Arc::new(TraceRecorder::new());
        {
            let _guard = crate::install(rec.clone());
            crate::decision(&Decision::StackPeel { gate: 4, degree: 3 });
            crate::counter("ignored.counter", 1);
            crate::observe("ignored.histogram", 1.0);
        }
        let trace = rec.snapshot();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(
            trace.events[0].kind,
            TraceEventKind::Decision(Decision::StackPeel { gate: 4, degree: 3 })
        );
        // The ignored counter and histogram are counted, not silent.
        assert_eq!(trace.dropped, 2);
    }

    #[test]
    fn events_carry_the_active_request_id() {
        let rec = Arc::new(TraceRecorder::new());
        {
            let _guard = crate::install(rec.clone());
            crate::decision(&Decision::StepBegin {
                step: 0,
                braids: 1,
                locals: 0,
            });
            {
                let _req = crate::begin_request(77);
                crate::decision(&Decision::StepBegin {
                    step: 1,
                    braids: 1,
                    locals: 0,
                });
            }
            crate::decision(&Decision::StepBegin {
                step: 2,
                braids: 1,
                locals: 0,
            });
        }
        let requests: Vec<u64> = rec.snapshot().events.iter().map(|e| e.request).collect();
        assert_eq!(requests, vec![0, 77, 0]);
    }

    #[test]
    fn threads_get_distinct_named_tracks() {
        let rec = Arc::new(TraceRecorder::new());
        let guard = crate::install(rec.clone());
        crate::decision(&Decision::JobStart {
            label: "main".into(),
        });
        let handoff = crate::current().unwrap();
        std::thread::Builder::new()
            .name("trace-worker".into())
            .spawn(move || {
                let _g = crate::install(handoff);
                crate::decision(&Decision::JobStart {
                    label: "worker".into(),
                });
            })
            .unwrap()
            .join()
            .unwrap();
        drop(guard);
        let trace = rec.snapshot();
        assert_eq!(trace.tracks.len(), 2);
        assert!(trace.tracks.contains(&"trace-worker".to_string()));
        let worker_track = trace
            .tracks
            .iter()
            .position(|t| t == "trace-worker")
            .unwrap();
        let worker_events: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.track == worker_track)
            .collect();
        assert_eq!(worker_events.len(), 1);
    }

    #[test]
    fn normalized_sorts_by_track_then_seq() {
        let trace = Trace {
            tracks: vec!["a".into(), "b".into()],
            events: vec![
                TraceEvent {
                    ts_ns: 9,
                    track: 1,
                    seq: 2,
                    request: 0,
                    kind: TraceEventKind::SpanEnd { path: "x".into() },
                },
                TraceEvent {
                    ts_ns: 5,
                    track: 0,
                    seq: 1,
                    request: 0,
                    kind: TraceEventKind::SpanEnd { path: "y".into() },
                },
                TraceEvent {
                    // Timestamp collision with the event below: the
                    // sort key must not consult ts_ns at all.
                    ts_ns: 1,
                    track: 1,
                    seq: 0,
                    request: 0,
                    kind: TraceEventKind::SpanBegin { path: "x".into() },
                },
                TraceEvent {
                    ts_ns: 1,
                    track: 0,
                    seq: 3,
                    request: 0,
                    kind: TraceEventKind::SpanBegin { path: "y".into() },
                },
            ],
            dropped: 0,
        };
        let sorted = trace.normalized();
        let keys: Vec<(usize, u64)> = sorted.events.iter().map(|e| (e.track, e.seq)).collect();
        assert_eq!(keys, vec![(0, 1), (0, 3), (1, 0), (1, 2)]);
    }
}
