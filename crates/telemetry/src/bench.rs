//! A small `std`-only micro-benchmark harness.
//!
//! Replaces Criterion for the suite's `harness = false` bench targets:
//! each benchmark calibrates an iteration count to a time budget, runs
//! a few measured batches, and reports the best per-iteration time
//! (the best batch is the least noise-contaminated estimate).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time per measured batch.
const BATCH_BUDGET: Duration = Duration::from_millis(60);
/// Number of measured batches per benchmark.
const BATCHES: u32 = 5;

/// A named group of benchmarks; prints one line per benchmark.
///
/// ```
/// use autobraid_telemetry::bench::{black_box, BenchGroup};
/// let mut group = BenchGroup::new("sums");
/// group.bench("small", || black_box((0..100u64).sum::<u64>()));
/// group.finish();
/// ```
pub struct BenchGroup {
    name: String,
    results: Vec<(String, f64)>,
}

impl BenchGroup {
    /// Starts a group named `name`.
    pub fn new(name: &str) -> BenchGroup {
        println!("benchmarking {name}");
        BenchGroup {
            name: name.to_string(),
            results: Vec::new(),
        }
    }

    /// Measures `f`, reporting nanoseconds per call under
    /// `group/label`. Return values are passed through
    /// [`black_box`] so the computation cannot be optimized away.
    pub fn bench<R, F: FnMut() -> R>(&mut self, label: &str, mut f: F) {
        // Calibrate: grow the iteration count until a batch fills the
        // time budget (keeps per-batch overhead amortized).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_BUDGET || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed < BATCH_BUDGET / 20 { 10 } else { 2 };
            iters = iters.saturating_mul(grow);
        }
        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(per_iter);
        }
        println!(
            "  {}/{label:<28} {:>14} ns/iter ({iters} iters/batch)",
            self.name,
            group_digits(best.round() as u64),
        );
        self.results.push((label.to_string(), best));
    }

    /// Returns the `(label, best ns/iter)` pairs measured so far.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }

    /// Ends the group (prints a trailing newline for readability).
    pub fn finish(self) {
        println!();
    }
}

fn group_digits(n: u64) -> String {
    let raw = n.to_string();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_group_by_thousands() {
        assert_eq!(group_digits(5), "5");
        assert_eq!(group_digits(1_234), "1,234");
        assert_eq!(group_digits(987_654_321), "987,654,321");
    }

    #[test]
    fn bench_records_a_result() {
        let mut g = BenchGroup::new("test");
        g.bench("noop", || black_box(1u32 + 1));
        assert_eq!(g.results().len(), 1);
        assert!(g.results()[0].1 >= 0.0);
        g.finish();
    }
}
