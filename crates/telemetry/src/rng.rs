//! A small deterministic PRNG (xoshiro256**), seeded via SplitMix64.
//!
//! The suite needs reproducible randomness for circuit generators,
//! annealing, and randomized tests, but the build must stay
//! zero-dependency. [`Rng64`] covers the API surface the suite uses:
//! integer/float ranges, Bernoulli draws, shuffling, and sampling
//! without replacement. It is **not** cryptographically secure.

use std::ops::Range;

/// xoshiro256** generator with a SplitMix64-expanded seed.
///
/// The same seed always yields the same stream, on every platform.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        // SplitMix64 expands the seed into four independent words.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        p >= 1.0 || self.gen_f64() < p
    }

    /// Uniform draw from a half-open range. Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..i + 1);
            items.swap(i, j);
        }
    }

    /// `k` distinct elements sampled uniformly without replacement
    /// (partial Fisher–Yates). Panics when `k > items.len()`.
    pub fn sample<T: Copy>(&mut self, items: &[T], k: usize) -> Vec<T> {
        assert!(k <= items.len(), "cannot sample {k} of {}", items.len());
        let mut pool: Vec<T> = items.to_vec();
        for i in 0..k {
            let j = self.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Lemire's multiply-shift; the bias over u64 is negligible for
        // the suite's purposes and the stream stays one-draw-per-call.
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Ranges [`Rng64::gen_range`] can draw from.
pub trait SampleRange {
    /// Element type produced by the draw.
    type Output;
    /// Draws one uniform value.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones_and_seeds() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        let mut c = Rng64::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Rng64::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "seed 5 should move something"
        );
    }

    #[test]
    fn sample_yields_distinct_elements() {
        let mut rng = Rng64::seed_from_u64(2);
        let items: Vec<u32> = (0..30).collect();
        for _ in 0..50 {
            let mut picked = rng.sample(&items, 3);
            picked.sort_unstable();
            picked.dedup();
            assert_eq!(picked.len(), 3);
            assert!(picked.iter().all(|p| *p < 30));
        }
    }
}
