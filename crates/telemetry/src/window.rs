//! Rolling time-window aggregation: [`WindowedRecorder`] and the
//! [`WindowedSnapshot`] it produces (`autobraid.metrics/v1`).
//!
//! Lifetime aggregates ([`crate::MemoryRecorder`]) answer "what has
//! this process done since it started"; a live daemon also needs
//! "what is happening *right now*". The windowed recorder keeps a ring
//! of per-second buckets — counters and reservoir histograms, the same
//! [`Histogram`](crate::memory) machinery as the lifetime path, so
//! percentiles are exact up to the reservoir cap — and snapshots the
//! trailing window (default 60 s) on demand. Stale buckets are
//! recycled lazily on the next write or snapshot that lands on them,
//! so an idle daemon pays nothing.

use crate::json::JsonValue;
use crate::memory::{Histogram, HistogramSummary};
use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifier of the windowed-snapshot JSON layout, emitted as the
/// `schema` field of the service `metrics` response. Bump only with a
/// matching update to `docs/METRICS.md`.
pub const METRICS_SCHEMA: &str = "autobraid.metrics/v1";

/// Default trailing-window length, in seconds.
pub const DEFAULT_WINDOW_SECONDS: u64 = 60;

#[derive(Default)]
struct Bucket {
    /// Absolute second (since the recorder's epoch) this bucket holds
    /// data for; a write to a different second resets it first.
    sec: u64,
    touched: bool,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A [`Recorder`] that aggregates counters and histograms into a ring
/// of one-second buckets.
///
/// Install it alongside the lifetime [`crate::MemoryRecorder`] via a
/// [`crate::FanoutRecorder`]; both see the same `add`/`observe`
/// stream, one keeps forever, this one keeps the trailing window.
/// Spans and decisions are declined — windowed span aggregation would
/// duplicate what the lifetime recorder already answers.
pub struct WindowedRecorder {
    epoch: Instant,
    window: u64,
    buckets: Mutex<Vec<Bucket>>,
}

impl Default for WindowedRecorder {
    fn default() -> WindowedRecorder {
        WindowedRecorder::new()
    }
}

impl WindowedRecorder {
    /// Creates a recorder with the default window
    /// ([`DEFAULT_WINDOW_SECONDS`] one-second buckets).
    pub fn new() -> WindowedRecorder {
        WindowedRecorder::with_window(DEFAULT_WINDOW_SECONDS)
    }

    /// Creates a recorder keeping `window_seconds` one-second buckets
    /// (minimum 1).
    pub fn with_window(window_seconds: u64) -> WindowedRecorder {
        let window = window_seconds.max(1);
        let mut buckets = Vec::with_capacity(window as usize);
        buckets.resize_with(window as usize, Bucket::default);
        WindowedRecorder {
            epoch: Instant::now(),
            window,
            buckets: Mutex::new(buckets),
        }
    }

    /// The window length, in seconds.
    pub fn window_seconds(&self) -> u64 {
        self.window
    }

    /// Seconds elapsed since the recorder was created (the clock that
    /// drives bucket assignment).
    pub fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Adds `delta` to counter `name` in the bucket for absolute
    /// second `sec`. The [`Recorder`] impl calls this with the current
    /// second; tests drive it directly to step time deterministically.
    pub fn add_at(&self, name: &str, delta: u64, sec: u64) {
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = Self::bucket_for(&mut buckets, self.window, sec);
        *bucket.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one observation of `value` under histogram `name` in
    /// the bucket for absolute second `sec`.
    pub fn observe_at(&self, name: &str, value: f64, sec: u64) {
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = Self::bucket_for(&mut buckets, self.window, sec);
        bucket
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    fn bucket_for(buckets: &mut [Bucket], window: u64, sec: u64) -> &mut Bucket {
        let idx = (sec % window) as usize;
        let bucket = &mut buckets[idx];
        if !bucket.touched || bucket.sec != sec {
            bucket.sec = sec;
            bucket.touched = true;
            bucket.counters.clear();
            bucket.histograms.clear();
        }
        bucket
    }

    /// Snapshots the trailing window as of now.
    pub fn snapshot(&self) -> WindowedSnapshot {
        self.snapshot_at(self.now_sec())
    }

    /// Snapshots the trailing window as of absolute second `now_sec`:
    /// buckets with `now_sec - sec < window` contribute; everything
    /// older is ignored (it will be recycled by the next write).
    pub fn snapshot_at(&self, now_sec: u64) -> WindowedSnapshot {
        let buckets = self.buckets.lock().unwrap();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        for bucket in buckets.iter() {
            if !bucket.touched || now_sec.saturating_sub(bucket.sec) >= self.window {
                continue;
            }
            for (name, &value) in &bucket.counters {
                *counters.entry(name.clone()).or_insert(0) += value;
            }
            for (name, h) in &bucket.histograms {
                histograms.entry(name.clone()).or_default().merge(h);
            }
        }
        WindowedSnapshot {
            window_seconds: self.window,
            counters,
            histograms: histograms
                .into_iter()
                .map(|(name, h)| (name, h.summary()))
                .collect(),
        }
    }
}

impl Recorder for WindowedRecorder {
    fn record_span(&self, _path: &str, _wall: Duration) {}

    // Always-on: the rolling window tracks service-level counters and
    // latencies, not inner-loop profiling detail.
    fn wants_fine_metrics(&self) -> bool {
        false
    }

    fn add(&self, name: &str, delta: u64) {
        self.add_at(name, delta, self.now_sec());
    }

    fn observe(&self, name: &str, value: f64) {
        self.observe_at(name, value, self.now_sec());
    }
}

/// Aggregate of the trailing window, extracted from a
/// [`WindowedRecorder`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowedSnapshot {
    /// Window length the snapshot covers, in seconds.
    pub window_seconds: u64,
    /// Counter totals over the window, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries over the window, sorted by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl WindowedSnapshot {
    /// Value of counter `name` over the window, or 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary for `name` over the window, if observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Builds the windowed half of the `autobraid.metrics/v1` JSON
    /// tree (the service wraps it with schema/version/uptime/gauges;
    /// see `docs/METRICS.md`).
    pub fn to_json_value(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .map(|(name, &value)| (name.as_str(), JsonValue::from(value)))
            .collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                (
                    name.as_str(),
                    JsonValue::object([
                        ("count", JsonValue::from(h.count)),
                        ("sum", JsonValue::from(h.sum)),
                        ("min", JsonValue::from(h.min)),
                        ("max", JsonValue::from(h.max)),
                        ("mean", JsonValue::from(h.mean)),
                        ("p50", JsonValue::from(h.p50)),
                        ("p90", JsonValue::from(h.p90)),
                        ("p99", JsonValue::from(h.p99)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        JsonValue::object([
            ("window_seconds", JsonValue::from(self.window_seconds)),
            ("counters", JsonValue::object(counters)),
            ("histograms", JsonValue::object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sums_only_recent_buckets() {
        let rec = WindowedRecorder::with_window(3);
        rec.add_at("requests", 1, 0);
        rec.add_at("requests", 2, 1);
        rec.add_at("requests", 4, 2);
        assert_eq!(rec.snapshot_at(2).counter("requests"), 7);
        // At second 3 the bucket for second 0 has aged out.
        assert_eq!(rec.snapshot_at(3).counter("requests"), 6);
        // At second 5 only second-2 data would remain, but 5-2 >= 3.
        assert_eq!(rec.snapshot_at(5).counter("requests"), 0);
    }

    #[test]
    fn bucket_reuse_resets_stale_data() {
        let rec = WindowedRecorder::with_window(2);
        rec.add_at("c", 10, 0);
        // Second 2 maps onto the same ring slot as second 0.
        rec.add_at("c", 1, 2);
        assert_eq!(rec.snapshot_at(2).counter("c"), 1);
    }

    #[test]
    fn histograms_merge_across_buckets_exactly() {
        let rec = WindowedRecorder::with_window(10);
        for sec in 0..5u64 {
            for v in 0..20u64 {
                rec.observe_at("lat", (sec * 20 + v) as f64, sec);
            }
        }
        let snap = rec.snapshot_at(4);
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 99.0);
        assert!((h.p50 - 50.0).abs() <= 1.0, "p50={}", h.p50);
        assert!((h.p99 - 99.0).abs() <= 1.0, "p99={}", h.p99);
    }

    #[test]
    fn old_observations_age_out_of_percentiles() {
        let rec = WindowedRecorder::with_window(2);
        rec.observe_at("lat", 1000.0, 0);
        rec.observe_at("lat", 1.0, 2);
        let snap = rec.snapshot_at(2);
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 1.0);
    }

    #[test]
    fn json_layout_has_window_counters_histograms() {
        let rec = WindowedRecorder::with_window(60);
        rec.add_at("requests", 2, 0);
        rec.observe_at("latency_ms", 4.0, 0);
        let json = rec.snapshot_at(0).to_json_value();
        assert_eq!(
            json.get("window_seconds").and_then(JsonValue::as_u64),
            Some(60)
        );
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("requests"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(
            json.get("histograms")
                .and_then(|h| h.get("latency_ms"))
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn recorder_impl_lands_in_the_current_second() {
        let rec = WindowedRecorder::new();
        rec.add("c", 3);
        rec.observe("h", 1.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c"), 3);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }
}
