//! Always-on flight recording: [`FlightRecorder`], a fixed-capacity
//! ring buffer of coarse decision events.
//!
//! A production daemon cannot afford a full [`crate::TraceRecorder`]
//! on every request — an unbounded event log on the compile hot path —
//! but it *can* afford a bounded ring of the coarse lifecycle
//! decisions (request begin/end, engine/step begins, strategy choices,
//! faults, cache lookups). When a request errors, is shed, or runs
//! slow, the service snapshots the ring and dumps the Perfetto-ready
//! trace to disk, so the decision history leading up to the incident
//! is available *after the fact* without re-running anything.
//!
//! Cost discipline: the recorder declines span events
//! ([`crate::Recorder::wants_span_events`] = false) and fine-grained
//! decisions ([`crate::Recorder::wants_fine_decisions`] = false), so
//! per-gate inner loops (route commits, stack peels, A* searches,
//! annealing accepts) never even build their payloads. What remains is
//! a handful of events per request — one mutex push each. The
//! `bench observe` harness pins the total overhead below 2% on
//! `compile/qft`.

use crate::recorder::Recorder;
use crate::trace::{Decision, Trace, TraceEvent, TraceEventKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default event capacity of the ring ([`FlightRecorder::new`]).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

#[derive(Default)]
struct FlightInner {
    /// `(thread_key, name)` pairs; index = track id. Tracks are never
    /// evicted — only events rotate out.
    tracks: Vec<(u64, String)>,
    events: VecDeque<TraceEvent>,
    /// Monotonic sequence for the normalization key; survives ring
    /// eviction so `(track, seq)` stays globally ordered.
    next_seq: u64,
}

/// A [`Recorder`] holding the last N coarse decisions in a ring.
///
/// Shared across every connection and worker thread of a daemon (one
/// `Arc`, fanned out via [`crate::FanoutRecorder`]); each recording
/// thread gets its own track, and every event carries the request id
/// active on that thread ([`crate::begin_request`]), so
/// [`FlightRecorder::dump_for`] can cut one request's history out of
/// the shared ring.
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    inner: Mutex<FlightInner>,
    /// Events rotated out of the ring (reported as [`Trace::dropped`]).
    overwritten: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Creates a recorder with the default capacity
    /// ([`DEFAULT_FLIGHT_CAPACITY`] events).
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// Creates a recorder keeping at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(FlightInner::default()),
            overwritten: AtomicU64::new(0),
        }
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events rotated out of the ring so far.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Snapshots the whole ring as a [`Trace`] (oldest event first).
    /// [`Trace::dropped`] reports how many events were rotated out.
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock().unwrap();
        Trace {
            tracks: inner.tracks.iter().map(|(_, name)| name.clone()).collect(),
            events: inner.events.iter().cloned().collect(),
            dropped: self.overwritten.load(Ordering::Relaxed),
        }
    }

    /// Snapshots only the events recorded under request `request_id`
    /// (see [`crate::begin_request`]) — the per-request cut the
    /// service dumps when that request errors or runs slow. Track
    /// names are preserved so the cut still exports standalone.
    pub fn dump_for(&self, request_id: u64) -> Trace {
        let mut trace = self.snapshot();
        trace.events.retain(|e| e.request == request_id);
        trace
    }

    fn push(&self, decision: &Decision) {
        let ts_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let key = crate::trace::thread_key();
        let request = crate::current_request();
        let mut inner = self.inner.lock().unwrap();
        let track = match inner.tracks.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                let name = std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{key}"));
                inner.tracks.push((key, name));
                inner.tracks.len() - 1
            }
        };
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back(TraceEvent {
            ts_ns,
            track,
            seq,
            request,
            kind: TraceEventKind::Decision(decision.clone()),
        });
    }
}

impl Recorder for FlightRecorder {
    fn record_span(&self, _path: &str, _wall: Duration) {}

    // Decisions-only: metrics of any granularity are someone else's job.
    fn wants_fine_metrics(&self) -> bool {
        false
    }

    fn add(&self, _name: &str, _delta: u64) {}

    fn observe(&self, _name: &str, _value: f64) {}

    fn record_decision(&self, decision: &Decision) {
        self.push(decision);
    }

    fn wants_decisions(&self) -> bool {
        true
    }

    fn wants_fine_decisions(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_coarse_drops_fine() {
        let rec = Arc::new(FlightRecorder::new());
        {
            let _guard = crate::install(rec.clone());
            assert!(crate::decisions_enabled());
            assert!(!crate::fine_decisions_enabled());
            crate::decision(&Decision::RequestBegin {
                id: 7,
                kind: "compile".to_string(),
            });
            // Fine decisions are filtered by the dispatch layer —
            // per-step and inner-loop events never reach the ring.
            crate::decision(&Decision::StepBegin {
                step: 0,
                braids: 2,
                locals: 1,
            });
            crate::decision(&Decision::StackPeel { gate: 1, degree: 1 });
            crate::decision(&Decision::AstarSearch {
                expansions: 10,
                found: true,
            });
        }
        let trace = rec.snapshot();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(
            match &trace.events[0].kind {
                TraceEventKind::Decision(d) => d.name(),
                _ => unreachable!(),
            },
            "request.begin"
        );
    }

    #[test]
    fn ring_evicts_oldest_and_counts_overwrites() {
        let rec = FlightRecorder::with_capacity(3);
        for step in 0..5u64 {
            rec.record_decision(&Decision::StepBegin {
                step,
                braids: 0,
                locals: 0,
            });
        }
        let trace = rec.snapshot();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.dropped, 2);
        let steps: Vec<u64> = trace
            .events
            .iter()
            .map(|e| match &e.kind {
                TraceEventKind::Decision(Decision::StepBegin { step, .. }) => *step,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(steps, vec![2, 3, 4]);
        // Sequence numbers survive eviction, so normalization order is
        // still the record order.
        let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn dump_for_cuts_one_request() {
        let rec = Arc::new(FlightRecorder::new());
        let _guard = crate::install(rec.clone());
        for id in [1u64, 2, 1] {
            let _req = crate::begin_request(id);
            crate::decision(&Decision::RequestBegin {
                id,
                kind: "compile".into(),
            });
        }
        let cut = rec.dump_for(1);
        assert_eq!(cut.events.len(), 2);
        assert!(cut.events.iter().all(|e| e.request == 1));
        // The cut still exports as valid trace JSON on its own.
        let json = crate::JsonValue::parse(&cut.to_chrome_json()).unwrap();
        assert!(json.as_array().is_some());
    }

    #[test]
    fn spans_and_metrics_cost_nothing() {
        let rec = Arc::new(FlightRecorder::new());
        {
            let _guard = crate::install(rec.clone());
            let _span = crate::span("work");
            crate::counter("c", 1);
            crate::observe("h", 1.0);
        }
        assert_eq!(rec.snapshot().events.len(), 0);
    }
}
