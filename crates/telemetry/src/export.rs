//! Chrome trace-event JSON export (`autobraid.trace/v1`).
//!
//! The output is the array form of the Chrome trace-event format, so
//! it loads directly in Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`: drop the file onto the UI and each thread that
//! recorded appears as its own named track, spans as nested duration
//! slices, decisions as instant markers on their thread's track.
//!
//! Layout, in order:
//! 1. one metadata event named `autobraid.trace` carrying
//!    `args.schema = "autobraid.trace/v1"`,
//! 2. one `thread_name` metadata event per track,
//! 3. the recorded events in normalized `(track, seq)` order — span
//!    begins as `ph:"B"`, span ends as `ph:"E"`, decisions as
//!    thread-scoped instants (`ph:"i"`, `s:"t"`).
//!
//! Every `B` is guaranteed a matching `E` on the same `tid`: the
//! exporter synthesizes closing events for spans still open when the
//! trace was snapshotted.

use crate::json::JsonValue;
use crate::trace::{Trace, TraceEventKind, TRACE_SCHEMA};

/// Process id used for every event (the suite is one process).
const PID: u64 = 1;

fn event_base(name: &str, ph: &str, ts_us: f64, tid: usize) -> Vec<(String, JsonValue)> {
    vec![
        ("name".to_string(), JsonValue::from(name)),
        ("ph".to_string(), JsonValue::from(ph)),
        ("ts".to_string(), JsonValue::from(ts_us)),
        ("pid".to_string(), JsonValue::from(PID)),
        ("tid".to_string(), JsonValue::from(tid)),
    ]
}

/// Last path segment — the slice name shown on the track (the full
/// path travels in `args.path`).
fn leaf(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Builds the Chrome trace-event JSON tree for `trace`.
pub fn chrome_trace_json(trace: &Trace) -> JsonValue {
    let normalized = trace.normalized();
    let mut events = Vec::new();

    let mut schema_meta = event_base("autobraid.trace", "M", 0.0, 0);
    schema_meta.push((
        "args".to_string(),
        JsonValue::object([
            ("schema", JsonValue::from(TRACE_SCHEMA)),
            ("dropped", JsonValue::from(normalized.dropped)),
        ]),
    ));
    events.push(JsonValue::Object(schema_meta));

    for (tid, name) in normalized.tracks.iter().enumerate() {
        let mut meta = event_base("thread_name", "M", 0.0, tid);
        meta.push((
            "args".to_string(),
            JsonValue::object([("name", JsonValue::from(name.as_str()))]),
        ));
        events.push(JsonValue::Object(meta));
    }

    // Per-track open-span stacks, to synthesize closing E events for
    // anything still open at snapshot time.
    let mut open: Vec<Vec<(String, f64)>> = vec![Vec::new(); normalized.tracks.len()];
    let mut last_ts: Vec<f64> = vec![0.0; normalized.tracks.len()];

    for event in &normalized.events {
        let ts_us = event.ts_ns as f64 / 1000.0;
        if let Some(t) = last_ts.get_mut(event.track) {
            *t = ts_us.max(*t);
        }
        match &event.kind {
            TraceEventKind::SpanBegin { path } => {
                if let Some(stack) = open.get_mut(event.track) {
                    stack.push((path.clone(), ts_us));
                }
                let mut b = event_base(leaf(path), "B", ts_us, event.track);
                b.push((
                    "args".to_string(),
                    JsonValue::object([("path", JsonValue::from(path.as_str()))]),
                ));
                events.push(JsonValue::Object(b));
            }
            TraceEventKind::SpanEnd { path } => {
                if let Some(stack) = open.get_mut(event.track) {
                    stack.pop();
                }
                events.push(JsonValue::Object(event_base(
                    leaf(path),
                    "E",
                    ts_us,
                    event.track,
                )));
            }
            TraceEventKind::Decision(decision) => {
                let mut i = event_base(decision.name(), "i", ts_us, event.track);
                i.push(("s".to_string(), JsonValue::from("t")));
                let mut args = decision.args();
                // Request correlation: tag the instant with the request
                // scope it was recorded under, so a flight-recorder dump
                // filters to one request in the Perfetto UI.
                if event.request != 0 {
                    if let JsonValue::Object(fields) = &mut args {
                        fields.push(("request".to_string(), JsonValue::from(event.request)));
                    }
                }
                i.push(("args".to_string(), args));
                events.push(JsonValue::Object(i));
            }
        }
    }

    for (tid, stack) in open.into_iter().enumerate() {
        for (path, _) in stack.into_iter().rev() {
            events.push(JsonValue::Object(event_base(
                leaf(&path),
                "E",
                last_ts[tid],
                tid,
            )));
        }
    }

    JsonValue::Array(events)
}

/// Renders `trace` as compact Chrome trace-event JSON.
pub fn chrome_trace(trace: &Trace) -> String {
    chrome_trace_json(trace).render_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Decision, TraceEvent, TraceRecorder};
    use std::sync::Arc;

    fn record_sample() -> Trace {
        let rec = Arc::new(TraceRecorder::new());
        {
            let _guard = crate::install(rec.clone());
            let _outer = crate::span("pipeline");
            {
                let _inner = crate::span("schedule");
                crate::decision(&Decision::RouteCommit {
                    gate: 7,
                    len: 5,
                    path: "0,0 0,1".into(),
                });
            }
        }
        rec.snapshot()
    }

    fn events_of(json: &JsonValue) -> &[JsonValue] {
        json.as_array().expect("top level is an array")
    }

    #[test]
    fn every_event_has_required_keys() {
        let json = chrome_trace_json(&record_sample());
        for event in events_of(&json) {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(event.get(key).is_some(), "missing {key} in {event:?}");
            }
        }
    }

    #[test]
    fn first_event_pins_the_schema() {
        let json = chrome_trace_json(&record_sample());
        let first = &events_of(&json)[0];
        assert_eq!(first.get("ph").and_then(JsonValue::as_str), Some("M"));
        assert_eq!(
            first
                .get("args")
                .and_then(|a| a.get("schema"))
                .and_then(JsonValue::as_str),
            Some(TRACE_SCHEMA)
        );
    }

    #[test]
    fn b_and_e_events_pair_up_per_tid() {
        let json = chrome_trace_json(&record_sample());
        let mut depth: std::collections::BTreeMap<u64, i64> = Default::default();
        for event in events_of(&json) {
            let ph = event.get("ph").and_then(JsonValue::as_str).unwrap();
            let tid = event.get("tid").and_then(JsonValue::as_u64).unwrap();
            match ph {
                "B" => *depth.entry(tid).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(tid).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "E without matching B on tid {tid}");
                }
                _ => {}
            }
        }
        assert!(
            depth.values().all(|&d| d == 0),
            "unmatched B events: {depth:?}"
        );
    }

    #[test]
    fn unclosed_spans_get_synthesized_ends() {
        // Hand-build a trace whose span never closed (e.g. snapshot
        // taken mid-compile).
        let trace = Trace {
            tracks: vec!["main".into()],
            events: vec![TraceEvent {
                ts_ns: 1000,
                track: 0,
                seq: 0,
                request: 0,
                kind: crate::TraceEventKind::SpanBegin {
                    path: "pipeline".into(),
                },
            }],
            dropped: 0,
        };
        let json = chrome_trace_json(&trace);
        let phases: Vec<&str> = events_of(&json)
            .iter()
            .filter_map(|e| e.get("ph").and_then(JsonValue::as_str))
            .filter(|p| *p == "B" || *p == "E")
            .collect();
        assert_eq!(phases, vec!["B", "E"]);
    }

    #[test]
    fn decisions_export_as_thread_scoped_instants() {
        let json = chrome_trace_json(&record_sample());
        let instant = events_of(&json)
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("i"))
            .expect("an instant event");
        assert_eq!(
            instant.get("name").and_then(JsonValue::as_str),
            Some("route.commit")
        );
        assert_eq!(instant.get("s").and_then(JsonValue::as_str), Some("t"));
        assert_eq!(
            instant
                .get("args")
                .and_then(|a| a.get("gate"))
                .and_then(JsonValue::as_u64),
            Some(7)
        );
    }

    #[test]
    fn output_parses_as_well_formed_json() {
        let rendered = chrome_trace(&record_sample());
        let parsed = JsonValue::parse(&rendered).expect("exporter output parses");
        assert!(parsed.as_array().is_some());
    }
}
