//! RAII timing spans with hierarchical, slash-joined paths.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static PATH_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A wall-clock timing span, created by [`crate::span`].
///
/// Spans nest lexically: a span opened while another is alive on the
/// same thread records under the parent's path plus its own name
/// (`parent/child`). The measured duration is reported to the
/// installed recorder when the span is dropped. When no recorder is
/// installed at creation time the span is inert and costs only the
/// enablement check.
#[must_use = "a span measures the scope it is bound to; binding it to `_` drops it immediately"]
pub struct Span {
    start: Option<Instant>,
}

impl Span {
    pub(crate) fn enter(name: &'static str) -> Span {
        if !crate::recorder::is_enabled() {
            return Span { start: None };
        }
        PATH_STACK.with(|s| s.borrow_mut().push(name));
        // Event recorders also want the *open* edge (aggregating
        // recorders only need the duration reported at drop).
        if crate::recorder::caps().span_events {
            let path = PATH_STACK.with(|s| s.borrow().join("/"));
            crate::recorder::with_recorder(|r| r.record_span_begin(&path));
        }
        Span {
            start: Some(Instant::now()),
        }
    }

    /// [`Span::enter`], but inert unless the installed recorder wants
    /// fine-grained metrics — used for per-step spans (routing batches,
    /// anneal runs) that would otherwise dominate the always-on ambient
    /// stack's overhead (see [`crate::fine_span`]).
    pub(crate) fn enter_fine(name: &'static str) -> Span {
        if !crate::recorder::caps().fine_metrics {
            return Span { start: None };
        }
        Span::enter(name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let wall = start.elapsed();
        let path = PATH_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        crate::recorder::with_recorder(|r| r.record_span(&path, wall));
    }
}

#[cfg(test)]
mod tests {
    use crate::{install, MemoryRecorder};
    use std::sync::Arc;

    #[test]
    fn spans_nest_into_slash_paths() {
        let rec = Arc::new(MemoryRecorder::new());
        {
            let _guard = install(rec.clone());
            let _outer = crate::span("outer");
            {
                let _inner = crate::span("inner");
                let _leaf = crate::span("leaf");
            }
            {
                let _inner = crate::span("inner");
            }
        }
        let snap = rec.snapshot();
        let paths: Vec<(&str, u64)> = snap
            .spans
            .iter()
            .map(|s| (s.path.as_str(), s.count))
            .collect();
        assert_eq!(
            paths,
            vec![("outer", 1), ("outer/inner", 2), ("outer/inner/leaf", 1)]
        );
    }

    #[test]
    fn disabled_spans_do_not_touch_the_stack() {
        let s = crate::span("orphan");
        drop(s);
        let rec = Arc::new(MemoryRecorder::new());
        {
            let _guard = install(rec.clone());
            let _top = crate::span("top");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].path, "top");
    }
}
