//! Thread-local request correlation.
//!
//! The service generates a request id at frame decode and brackets the
//! work with [`begin_request`]; every [`crate::trace::TraceEvent`]
//! recorded while the guard is live carries the id in its
//! [`request`](crate::trace::TraceEvent::request) field. The id is a
//! plain `u64` (0 = no request), so handing it across threads — a pool
//! worker re-enters the scope with the same id — costs one register.

use std::cell::Cell;

thread_local! {
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Marks this thread as working on request `id` and returns a guard.
/// Dropping the guard restores the previous request id (scopes nest,
/// mirroring [`crate::install`]). Passing `0` clears the scope.
pub fn begin_request(id: u64) -> RequestGuard {
    let previous = CURRENT_REQUEST.with(|c| c.replace(id));
    RequestGuard { previous }
}

/// The request id this thread is currently working on, or 0 when no
/// request scope is open.
pub fn current_request() -> u64 {
    CURRENT_REQUEST.with(|c| c.get())
}

/// RAII guard returned by [`begin_request`]; restores the previous
/// request id on drop.
#[must_use = "dropping the guard immediately closes the request scope"]
pub struct RequestGuard {
    previous: u64,
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_request(), 0);
        {
            let _outer = begin_request(7);
            assert_eq!(current_request(), 7);
            {
                let _inner = begin_request(9);
                assert_eq!(current_request(), 9);
            }
            assert_eq!(current_request(), 7);
        }
        assert_eq!(current_request(), 0);
    }

    #[test]
    fn fresh_threads_have_no_request() {
        let _guard = begin_request(42);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert_eq!(current_request(), 0);
                let _g = begin_request(42);
                assert_eq!(current_request(), 42);
            });
        });
        assert_eq!(current_request(), 42);
    }
}
