//! The [`Recorder`] trait and the thread-local installation machinery.
//!
//! A recorder is installed per thread (the compilation pipeline is
//! single-threaded; each worker thread installs its own recorder if it
//! wants one). When no recorder is installed every telemetry call is a
//! single thread-local flag check — the hot path costs nothing.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Duration;

/// Sink for telemetry events.
///
/// Implementations must be cheap: the instrumented code calls these
/// methods from inner loops. The bundled [`crate::MemoryRecorder`]
/// aggregates in-process; a custom recorder could stream events
/// elsewhere.
pub trait Recorder: Send + Sync {
    /// Record one completed span occurrence. `path` is the
    /// slash-joined nesting path (e.g. `pipeline/schedule/route`) and
    /// `wall` the measured wall-clock duration.
    fn record_span(&self, path: &str, wall: Duration);

    /// Add `delta` to the monotonic counter `name`.
    fn add(&self, name: &str, delta: u64);

    /// Record one observation of `value` under the histogram `name`.
    fn observe(&self, name: &str, value: f64);

    /// Record that a span just *opened* at `path`. Only called when
    /// [`Recorder::wants_span_events`] returns true; aggregating
    /// recorders ignore it (they only need the completed duration).
    fn record_span_begin(&self, _path: &str) {}

    /// Whether this recorder wants [`Recorder::record_span_begin`]
    /// calls. Defaults to false so the span hot path skips building
    /// the begin-time path string for aggregating recorders.
    fn wants_span_events(&self) -> bool {
        false
    }

    /// Record a typed decision event. Only called when
    /// [`Recorder::wants_decisions`] returns true.
    fn record_decision(&self, _decision: &crate::trace::Decision) {}

    /// Whether this recorder wants [`Recorder::record_decision`]
    /// calls. Defaults to false so instrumented code can skip building
    /// decision payloads (see [`crate::decisions_enabled`]).
    fn wants_decisions(&self) -> bool {
        false
    }

    /// Whether this recorder also wants *fine-grained* decisions —
    /// the per-gate / per-iteration events for which
    /// [`crate::trace::Decision::is_fine`] returns true. Defaults to
    /// [`Recorder::wants_decisions`], so a full [`crate::TraceRecorder`]
    /// keeps everything; always-on recorders like
    /// [`crate::FlightRecorder`] override this to false so hot loops
    /// skip building the expensive payloads (path strings, per-accept
    /// events) entirely (see [`crate::fine_decisions_enabled`]).
    fn wants_fine_decisions(&self) -> bool {
        self.wants_decisions()
    }

    /// Whether this recorder wants *fine-grained metrics* — the
    /// per-search / per-iteration counters and histogram observations
    /// emitted from compile inner loops (A* expansions, annealing
    /// objectives, LLG sizes, per-step batch shapes). Defaults to true
    /// so explicitly-installed recorders (a `--telemetry` request, a
    /// trace capture) keep the full profile; always-on ambient sinks
    /// ([`crate::MemoryRecorder::ambient`], [`crate::WindowedRecorder`],
    /// [`crate::FlightRecorder`]) decline so hot loops skip the calls
    /// entirely (see [`crate::fine_metrics_enabled`]) — this is what
    /// keeps service observability inside its <2% overhead budget.
    fn wants_fine_metrics(&self) -> bool {
        true
    }
}

/// A [`Recorder`] that forwards every event to each of its sinks.
///
/// This is how a compile captures an aggregate snapshot *and* an
/// event trace in one run: fan out to a [`crate::MemoryRecorder`] and
/// a [`crate::TraceRecorder`].
pub struct FanoutRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    /// Builds a fanout over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> FanoutRecorder {
        FanoutRecorder { sinks }
    }
}

impl Recorder for FanoutRecorder {
    fn record_span(&self, path: &str, wall: std::time::Duration) {
        for sink in &self.sinks {
            sink.record_span(path, wall);
        }
    }

    fn add(&self, name: &str, delta: u64) {
        for sink in &self.sinks {
            sink.add(name, delta);
        }
    }

    fn observe(&self, name: &str, value: f64) {
        for sink in &self.sinks {
            sink.observe(name, value);
        }
    }

    fn record_span_begin(&self, path: &str) {
        for sink in &self.sinks {
            if sink.wants_span_events() {
                sink.record_span_begin(path);
            }
        }
    }

    fn wants_span_events(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_span_events())
    }

    fn record_decision(&self, decision: &crate::trace::Decision) {
        let fine = decision.is_fine();
        for sink in &self.sinks {
            let wants = if fine {
                sink.wants_fine_decisions()
            } else {
                sink.wants_decisions()
            };
            if wants {
                sink.record_decision(decision);
            }
        }
    }

    fn wants_decisions(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_decisions())
    }

    fn wants_fine_decisions(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_fine_decisions())
    }

    fn wants_fine_metrics(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_fine_metrics())
    }
}

/// The installed recorder's capabilities, snapshotted at [`install`]
/// time so the hot-path guards ([`crate::fine_metrics_enabled`],
/// [`crate::fine_decisions_enabled`], …) are one thread-local read
/// instead of a dynamic dispatch chain through a fanout. Sound because
/// a recorder's `wants_*` answers are fixed for its lifetime.
#[derive(Clone, Copy, Default)]
pub(crate) struct Caps {
    pub(crate) decisions: bool,
    pub(crate) fine_decisions: bool,
    pub(crate) fine_metrics: bool,
    pub(crate) span_events: bool,
}

impl Caps {
    fn of(recorder: &dyn Recorder) -> Caps {
        Caps {
            decisions: recorder.wants_decisions(),
            fine_decisions: recorder.wants_fine_decisions(),
            fine_metrics: recorder.wants_fine_metrics(),
            span_events: recorder.wants_span_events(),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<dyn Recorder>>> = const { RefCell::new(None) };
    static CAPS: Cell<Caps> = const {
        Cell::new(Caps {
            decisions: false,
            fine_decisions: false,
            fine_metrics: false,
            span_events: false,
        })
    };
}

/// Installs `recorder` as this thread's telemetry sink and returns a
/// guard. Dropping the guard restores whatever recorder (possibly
/// none) was installed before — installations nest.
pub fn install(recorder: Arc<dyn Recorder>) -> RecorderGuard {
    let caps = Caps::of(recorder.as_ref());
    let previous = CURRENT.with(|c| c.borrow_mut().replace(recorder));
    let previous_caps = CAPS.with(|c| c.replace(caps));
    RecorderGuard {
        previous,
        previous_caps,
    }
}

/// This thread's cached capability snapshot (all-false when no
/// recorder is installed).
pub(crate) fn caps() -> Caps {
    CAPS.with(Cell::get)
}

/// Returns true when a recorder is installed on this thread.
///
/// Instrumented code may use this to skip the *computation* of an
/// expensive metric (not just its recording).
pub fn is_enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Returns this thread's installed recorder, if any.
///
/// This is the pool-aware half of the installation protocol: a parallel
/// region captures `current()` on the coordinating thread and
/// [`install`]s the clone on each worker it spawns, so events recorded
/// by workers land in the same (thread-safe) recorder as the parent's.
/// The bundled [`crate::MemoryRecorder`] aggregates counters and spans
/// associatively, so the merged totals are independent of how work was
/// split across threads.
pub fn current() -> Option<Arc<dyn Recorder>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Runs `f` against the installed recorder, if any.
pub(crate) fn with_recorder<R>(f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|r| f(r.as_ref())))
}

/// RAII guard returned by [`install`]; restores the previous recorder
/// on drop.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct RecorderGuard {
    previous: Option<Arc<dyn Recorder>>,
    previous_caps: Caps,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT.with(|c| *c.borrow_mut() = previous);
        CAPS.with(|c| c.set(self.previous_caps));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Tape(Mutex<Vec<String>>);

    impl Recorder for Tape {
        fn record_span(&self, path: &str, _wall: Duration) {
            self.0.lock().unwrap().push(format!("span:{path}"));
        }
        fn add(&self, name: &str, delta: u64) {
            self.0.lock().unwrap().push(format!("add:{name}={delta}"));
        }
        fn observe(&self, name: &str, value: f64) {
            self.0.lock().unwrap().push(format!("obs:{name}={value}"));
        }
    }

    #[test]
    fn current_propagates_to_spawned_threads() {
        let tape = Arc::new(Tape::default());
        {
            let _guard = install(tape.clone());
            let handoff = current().expect("a recorder is installed");
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    assert!(!is_enabled(), "fresh threads start with no recorder");
                    let _g = install(handoff);
                    crate::counter("from.worker", 1);
                });
            });
            crate::counter("from.parent", 1);
        }
        assert!(current().is_none());
        let events = tape.0.lock().unwrap().clone();
        assert!(events.contains(&"add:from.worker=1".to_string()));
        assert!(events.contains(&"add:from.parent=1".to_string()));
    }

    #[test]
    fn fanout_forwards_to_all_sinks() {
        use crate::{MemoryRecorder, TraceRecorder};
        let memory = Arc::new(MemoryRecorder::new());
        let trace = Arc::new(TraceRecorder::new());
        let fanout = Arc::new(super::FanoutRecorder::new(vec![
            memory.clone() as Arc<dyn Recorder>,
            trace.clone() as Arc<dyn Recorder>,
        ]));
        assert!(fanout.wants_decisions());
        assert!(fanout.wants_span_events());
        {
            let _guard = install(fanout);
            let _span = crate::span("work");
            crate::counter("gates", 2);
            crate::decision(&crate::trace::Decision::SwapInserted { a: 1, b: 2 });
        }
        let snap = memory.snapshot();
        assert_eq!(snap.counter("gates"), 2);
        assert_eq!(snap.span("work").unwrap().count, 1);
        let events = trace.snapshot().events;
        // Begin, decision, end — the memory sink sees only the end.
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn install_nests_and_restores() {
        assert!(!is_enabled());
        let outer = Arc::new(Tape::default());
        let inner = Arc::new(Tape::default());
        {
            let _g1 = install(outer.clone());
            assert!(is_enabled());
            crate::counter("outer.only", 1);
            {
                let _g2 = install(inner.clone());
                crate::counter("inner.only", 2);
            }
            crate::counter("outer.again", 3);
        }
        assert!(!is_enabled());
        crate::counter("dropped", 9);
        assert_eq!(
            *outer.0.lock().unwrap(),
            vec!["add:outer.only=1", "add:outer.again=3"]
        );
        assert_eq!(*inner.0.lock().unwrap(), vec!["add:inner.only=2"]);
    }
}
