//! Coordinate types for the surface-code routing grid.
//!
//! The lattice is partitioned into an `L × L` grid of unit *cells* (tiles),
//! each holding one logical qubit. Braiding paths are routed through the
//! *channels* between tiles; channels intersect at *vertices*. A grid with
//! `L` cells per side has `(L + 1) × (L + 1)` vertices.
//!
//! ```text
//!   v(0,0) --- v(0,1) --- v(0,2)
//!     |   cell   |   cell   |
//!     |  (0,0)   |  (0,1)   |
//!   v(1,0) --- v(1,1) --- v(1,2)
//! ```

use std::fmt;

/// A channel intersection in the routing grid.
///
/// Vertices are addressed `(row, col)` with `0 ≤ row, col ≤ L` for a grid of
/// `L` cells per side.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::geometry::Vertex;
///
/// let v = Vertex::new(2, 3);
/// assert_eq!(v.manhattan_distance(Vertex::new(0, 0)), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vertex {
    /// Row index (0 at the top of the grid).
    pub row: u32,
    /// Column index (0 at the left of the grid).
    pub col: u32,
}

impl Vertex {
    /// Creates a vertex at `(row, col)`.
    #[inline]
    pub const fn new(row: u32, col: u32) -> Self {
        Vertex { row, col }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// # use autobraid_lattice::geometry::Vertex;
    /// assert_eq!(Vertex::new(1, 1).manhattan_distance(Vertex::new(4, 3)), 5);
    /// ```
    #[inline]
    pub fn manhattan_distance(self, other: Vertex) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Whether `other` is a 4-neighbour of `self` (shares a channel segment).
    #[inline]
    pub fn is_adjacent(self, other: Vertex) -> bool {
        self.manhattan_distance(other) == 1
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v({},{})", self.row, self.col)
    }
}

/// A logical-qubit tile position in the cell grid.
///
/// Cells are addressed `(row, col)` with `0 ≤ row, col < L`.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::geometry::{Cell, Vertex};
///
/// let c = Cell::new(1, 2);
/// assert!(c.corners().contains(&Vertex::new(1, 2)));
/// assert!(c.corners().contains(&Vertex::new(2, 3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cell {
    /// Row index of the tile.
    pub row: u32,
    /// Column index of the tile.
    pub col: u32,
}

impl Cell {
    /// Creates a cell at `(row, col)`.
    #[inline]
    pub const fn new(row: u32, col: u32) -> Self {
        Cell { row, col }
    }

    /// The four corner vertices of this cell, in row-major order:
    /// top-left, top-right, bottom-left, bottom-right.
    #[inline]
    pub fn corners(self) -> [Vertex; 4] {
        [
            Vertex::new(self.row, self.col),
            Vertex::new(self.row, self.col + 1),
            Vertex::new(self.row + 1, self.col),
            Vertex::new(self.row + 1, self.col + 1),
        ]
    }

    /// Top-left corner vertex.
    #[inline]
    pub fn top_left(self) -> Vertex {
        Vertex::new(self.row, self.col)
    }

    /// Manhattan distance between tile centres, in cell units.
    #[inline]
    pub fn manhattan_distance(self, other: Cell) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Minimum Manhattan distance between any corner of `self` and any
    /// corner of `other`. This is the routing distance lower bound used by
    /// the greedy baseline's priority ordering.
    pub fn corner_distance(self, other: Cell) -> u32 {
        let mut best = u32::MAX;
        for a in self.corners() {
            for b in other.corners() {
                best = best.min(a.manhattan_distance(b));
            }
        }
        best
    }

    /// Whether `v` is one of this cell's four corners.
    #[inline]
    pub fn has_corner(self, v: Vertex) -> bool {
        (v.row == self.row || v.row == self.row + 1) && (v.col == self.col || v.col == self.col + 1)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell({},{})", self.row, self.col)
    }
}

/// An axis-aligned bounding box in **vertex** coordinates (inclusive).
///
/// Bounding boxes drive the LLG decomposition and the CX interference graph
/// (Section 3.3 of the paper). The *outer* bounding box of a CX gate is the
/// minimal box enclosing all eight corner vertices of its two operand cells;
/// the *inner* bounding box encloses at least one vertex of each (the
/// closest pair of corners).
///
/// # Examples
///
/// ```
/// use autobraid_lattice::geometry::{BBox, Cell};
///
/// let a = BBox::of_cell(Cell::new(0, 0));
/// let b = BBox::of_cell(Cell::new(0, 1));
/// assert!(a.intersects(&b)); // adjacent cells share a channel edge
/// let c = BBox::of_cell(Cell::new(5, 5));
/// assert!(!a.intersects(&c));
/// assert!(a.union(&c).contains_box(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BBox {
    /// Minimal row (inclusive).
    pub min_row: u32,
    /// Minimal column (inclusive).
    pub min_col: u32,
    /// Maximal row (inclusive).
    pub max_row: u32,
    /// Maximal column (inclusive).
    pub max_col: u32,
}

impl BBox {
    /// Creates a bounding box from inclusive vertex extents.
    ///
    /// # Panics
    ///
    /// Panics if `min_row > max_row` or `min_col > max_col`.
    pub fn new(min_row: u32, min_col: u32, max_row: u32, max_col: u32) -> Self {
        assert!(
            min_row <= max_row && min_col <= max_col,
            "inverted bounding box: ({min_row},{min_col})-({max_row},{max_col})"
        );
        BBox {
            min_row,
            min_col,
            max_row,
            max_col,
        }
    }

    /// The bounding box of a single vertex.
    #[inline]
    pub fn of_vertex(v: Vertex) -> Self {
        BBox {
            min_row: v.row,
            min_col: v.col,
            max_row: v.row,
            max_col: v.col,
        }
    }

    /// The bounding box of one cell (its four corner vertices).
    #[inline]
    pub fn of_cell(c: Cell) -> Self {
        BBox {
            min_row: c.row,
            min_col: c.col,
            max_row: c.row + 1,
            max_col: c.col + 1,
        }
    }

    /// Outer bounding box of a CX gate with operand tiles `a` and `b`:
    /// the minimal box enclosing both cells' corners.
    pub fn of_gate(a: Cell, b: Cell) -> Self {
        BBox::of_cell(a).union(&BBox::of_cell(b))
    }

    /// Inner bounding box of a CX gate: the minimal box containing at least
    /// one corner vertex of each operand cell (the box spanned by the
    /// closest corner pair).
    pub fn inner_of_gate(a: Cell, b: Cell) -> Self {
        // The closest pair of corners spans the gap between the two tiles.
        let mut best = (u32::MAX, Vertex::default(), Vertex::default());
        for va in a.corners() {
            for vb in b.corners() {
                let d = va.manhattan_distance(vb);
                if d < best.0 {
                    best = (d, va, vb);
                }
            }
        }
        let (_, va, vb) = best;
        BBox {
            min_row: va.row.min(vb.row),
            min_col: va.col.min(vb.col),
            max_row: va.row.max(vb.row),
            max_col: va.col.max(vb.col),
        }
    }

    /// Width in vertex columns spanned (`max_col - min_col`).
    #[inline]
    pub fn width(&self) -> u32 {
        self.max_col - self.min_col
    }

    /// Height in vertex rows spanned (`max_row - min_row`).
    #[inline]
    pub fn height(&self) -> u32 {
        self.max_row - self.min_row
    }

    /// Area in cell units (`width × height`). A degenerate (one-dimensional)
    /// box has area zero.
    #[inline]
    pub fn area(&self) -> u64 {
        u64::from(self.width()) * u64::from(self.height())
    }

    /// Number of vertices enclosed (inclusive on both axes).
    #[inline]
    pub fn vertex_count(&self) -> u64 {
        u64::from(self.width() + 1) * u64::from(self.height() + 1)
    }

    /// Whether the two boxes share at least one vertex.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_row <= other.max_row
            && other.min_row <= self.max_row
            && self.min_col <= other.max_col
            && other.min_col <= self.max_col
    }

    /// Whether the two boxes overlap with positive area — sharing only a
    /// boundary line or corner does **not** count.
    ///
    /// This is the overlap notion used for LLG formation and CX
    /// interference: two gates whose boxes merely touch can each route
    /// inside their own box without contention, so they are independent
    /// (e.g. the chained neighbour pairs of the Ising model stay separate
    /// LLGs, as in the paper's Fig. 7 analysis).
    #[inline]
    pub fn overlaps_open(&self, other: &BBox) -> bool {
        self.min_row < other.max_row
            && other.min_row < self.max_row
            && self.min_col < other.max_col
            && other.min_col < self.max_col
    }

    /// Whether `v` lies inside or on the boundary of this box.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        v.row >= self.min_row
            && v.row <= self.max_row
            && v.col >= self.min_col
            && v.col <= self.max_col
    }

    /// Whether `other` lies entirely inside or on the boundary of this box.
    #[inline]
    pub fn contains_box(&self, other: &BBox) -> bool {
        self.min_row <= other.min_row
            && self.min_col <= other.min_col
            && self.max_row >= other.max_row
            && self.max_col >= other.max_col
    }

    /// Whether `other` is *strictly nested* in `self`: contained entirely in
    /// the interior, with no shared boundary vertex (the Theorem 2
    /// condition: "B's bounding box encloses A's bounding box and they do
    /// not overlap").
    #[inline]
    pub fn strictly_nests(&self, other: &BBox) -> bool {
        self.min_row < other.min_row
            && self.min_col < other.min_col
            && self.max_row > other.max_row
            && self.max_col > other.max_col
    }

    /// The minimal box enclosing both `self` and `other` (the *joint*
    /// bounding box used to form LLGs).
    #[inline]
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min_row: self.min_row.min(other.min_row),
            min_col: self.min_col.min(other.min_col),
            max_row: self.max_row.max(other.max_row),
            max_col: self.max_col.max(other.max_col),
        }
    }

    /// Grows the box by one vertex ring on every side, clamped to the grid
    /// of `l` cells per side (vertex indices `0..=l`). Used to route along
    /// the boundary of an LLG's bounding box.
    pub fn expanded(&self, by: u32, l: u32) -> BBox {
        BBox {
            min_row: self.min_row.saturating_sub(by),
            min_col: self.min_col.saturating_sub(by),
            max_row: (self.max_row + by).min(l),
            max_col: (self.max_col + by).min(l),
        }
    }

    /// Iterates over every vertex inside or on the boundary of the box in
    /// row-major order.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        let (r0, r1, c0, c1) = (self.min_row, self.max_row, self.min_col, self.max_col);
        (r0..=r1).flat_map(move |r| (c0..=c1).map(move |c| Vertex::new(r, c)))
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bbox[({},{})..({},{})]",
            self.min_row, self.min_col, self.max_row, self.max_col
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_distance_symmetric() {
        let a = Vertex::new(3, 7);
        let b = Vertex::new(5, 2);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(b.manhattan_distance(a), 7);
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn vertex_adjacency() {
        let v = Vertex::new(1, 1);
        assert!(v.is_adjacent(Vertex::new(0, 1)));
        assert!(v.is_adjacent(Vertex::new(1, 2)));
        assert!(!v.is_adjacent(Vertex::new(2, 2)));
        assert!(!v.is_adjacent(v));
    }

    #[test]
    fn cell_corners_are_adjacent_square() {
        let c = Cell::new(4, 9);
        let [tl, tr, bl, br] = c.corners();
        assert!(tl.is_adjacent(tr));
        assert!(tl.is_adjacent(bl));
        assert!(br.is_adjacent(tr));
        assert!(br.is_adjacent(bl));
        assert_eq!(tl.manhattan_distance(br), 2);
    }

    #[test]
    fn cell_corner_distance() {
        // Horizontally adjacent cells share two corner vertices.
        assert_eq!(Cell::new(0, 0).corner_distance(Cell::new(0, 1)), 0);
        // One cell apart: closest corners are 1 channel segment away.
        assert_eq!(Cell::new(0, 0).corner_distance(Cell::new(0, 2)), 1);
        // Diagonal neighbours share exactly one corner.
        assert_eq!(Cell::new(0, 0).corner_distance(Cell::new(1, 1)), 0);
    }

    #[test]
    fn cell_has_corner() {
        let c = Cell::new(2, 3);
        for v in c.corners() {
            assert!(c.has_corner(v));
        }
        assert!(!c.has_corner(Vertex::new(2, 5)));
        assert!(!c.has_corner(Vertex::new(4, 3)));
    }

    #[test]
    fn bbox_of_gate_encloses_both_cells() {
        let a = Cell::new(0, 0);
        let b = Cell::new(3, 2);
        let bb = BBox::of_gate(a, b);
        for v in a.corners().into_iter().chain(b.corners()) {
            assert!(bb.contains(v), "{bb} should contain {v}");
        }
        assert_eq!(bb, BBox::new(0, 0, 4, 3));
    }

    #[test]
    fn inner_bbox_spans_closest_corners() {
        let a = Cell::new(0, 0);
        let b = Cell::new(0, 3);
        let inner = BBox::inner_of_gate(a, b);
        // Closest corners: (0,1)/(1,1) of a and (0,3)/(1,3) of b; the
        // search picks the first minimal pair which is (0,1)-(0,3).
        assert_eq!(inner.height(), 0);
        assert_eq!(inner.min_col, 1);
        assert_eq!(inner.max_col, 3);
    }

    #[test]
    fn inner_bbox_disjoint_from_outer_boundary_for_2d_gate() {
        // For a gate whose outer box is 2-dimensional, the inner box must
        // not touch the outer boundary (Appendix, Fig. 19).
        let a = Cell::new(0, 0);
        let b = Cell::new(2, 2);
        let outer = BBox::of_gate(a, b);
        let inner = BBox::inner_of_gate(a, b);
        assert!(inner.min_row > outer.min_row);
        assert!(inner.min_col > outer.min_col);
        assert!(inner.max_row < outer.max_row);
        assert!(inner.max_col < outer.max_col);
    }

    #[test]
    fn bbox_intersection_cases() {
        let a = BBox::new(0, 0, 2, 2);
        assert!(a.intersects(&BBox::new(2, 2, 4, 4)), "corner touch counts");
        assert!(a.intersects(&BBox::new(1, 1, 1, 1)));
        assert!(!a.intersects(&BBox::new(3, 0, 5, 2)));
        assert!(!a.intersects(&BBox::new(0, 3, 2, 5)));
    }

    #[test]
    fn bbox_open_overlap_cases() {
        let a = BBox::new(0, 0, 2, 2);
        assert!(
            !a.overlaps_open(&BBox::new(2, 2, 4, 4)),
            "corner touch is not open overlap"
        );
        assert!(
            !a.overlaps_open(&BBox::new(0, 2, 2, 4)),
            "edge touch is not open overlap"
        );
        assert!(
            a.overlaps_open(&BBox::new(1, 1, 3, 3)),
            "area overlap counts"
        );
        assert!(a.overlaps_open(&a), "a 2-D box overlaps itself");
        // Degenerate boxes have no interior, hence no open overlap.
        let line = BBox::new(1, 0, 1, 4);
        assert!(!line.overlaps_open(&line));
        assert!(!a.overlaps_open(&BBox::new(5, 5, 9, 9)));
    }

    #[test]
    fn bbox_union_and_containment() {
        let a = BBox::new(0, 0, 1, 1);
        let b = BBox::new(3, 4, 5, 6);
        let u = a.union(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
        assert_eq!(u, BBox::new(0, 0, 5, 6));
    }

    #[test]
    fn strict_nesting() {
        let outer = BBox::new(0, 0, 5, 5);
        assert!(outer.strictly_nests(&BBox::new(1, 1, 4, 4)));
        assert!(
            !outer.strictly_nests(&BBox::new(0, 1, 4, 4)),
            "shared border"
        );
        assert!(!outer.strictly_nests(&outer));
        assert!(!BBox::new(1, 1, 4, 4).strictly_nests(&outer));
    }

    #[test]
    fn bbox_area_and_vertices() {
        let b = BBox::new(1, 1, 3, 4);
        assert_eq!(b.area(), 6);
        assert_eq!(b.vertex_count(), 12);
        assert_eq!(b.vertices().count(), 12);
        let degenerate = BBox::new(2, 2, 2, 5);
        assert_eq!(degenerate.area(), 0);
        assert_eq!(degenerate.vertex_count(), 4);
    }

    #[test]
    fn bbox_expand_clamps_to_grid() {
        let b = BBox::new(0, 0, 2, 2);
        let e = b.expanded(1, 3);
        assert_eq!(e, BBox::new(0, 0, 3, 3));
        let f = BBox::new(1, 1, 2, 2).expanded(1, 10);
        assert_eq!(f, BBox::new(0, 0, 3, 3));
    }

    #[test]
    #[should_panic(expected = "inverted bounding box")]
    fn bbox_rejects_inverted_extents() {
        let _ = BBox::new(3, 0, 1, 5);
    }
}
