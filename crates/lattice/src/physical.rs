//! Physical-level view of the surface code: the checkerboard of data and
//! measurement qubits, double-defect logical qubits, and the 8-phase
//! stabilizer measurement cycle (paper §2, Figs. 2–4).
//!
//! The routing layer never needs this detail — braiding is scheduled on
//! the tile/channel abstraction — but lowering a schedule to hardware
//! does: "moving" a defect means disabling and re-enabling measurement
//! qubits cycle by cycle. [`crate::grid::Grid`] coordinates map into this
//! physical lattice through [`PhysicalLayout`].

use crate::error::LatticeError;
use crate::geometry::{Cell, Vertex};

/// Role of one physical qubit in the lattice checkerboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QubitRole {
    /// Holds code state; never measured directly during stabilization.
    Data,
    /// Ancilla measuring an X stabilizer (plaquette of XXXX).
    MeasureX,
    /// Ancilla measuring a Z stabilizer (plaquette of ZZZZ).
    MeasureZ,
}

/// A physical qubit coordinate: `(row, col)` on the physical lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysicalQubit {
    /// Physical row.
    pub row: u32,
    /// Physical column.
    pub col: u32,
}

/// Maps the logical tile grid onto a concrete physical lattice.
///
/// Each logical tile occupies a `(2d) × (2d)` patch of physical qubits
/// (enough for a double-defect qubit of distance `d` plus its share of
/// the surrounding channels), so a grid of `L` tiles per side uses a
/// `(2dL + 1)²` physical lattice. Data and measurement qubits alternate
/// in the usual checkerboard; measurement ancillas alternate X/Z by row
/// parity.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::physical::{PhysicalLayout, QubitRole};
///
/// let layout = PhysicalLayout::new(4, 5)?; // 4×4 tiles at distance 5
/// assert_eq!(layout.physical_side(), 2 * 5 * 4 + 1);
/// let origin = layout.role_at(0, 0);
/// assert_eq!(origin, QubitRole::Data);
/// # Ok::<(), autobraid_lattice::LatticeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalLayout {
    tiles_per_side: u32,
    distance: u32,
}

impl PhysicalLayout {
    /// Creates a layout for `tiles_per_side` tiles at code distance
    /// `distance`.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::EmptyGrid`] for a zero-sized grid and
    /// [`LatticeError::InvalidCodeParams`] for an even or zero distance.
    pub fn new(tiles_per_side: u32, distance: u32) -> Result<Self, LatticeError> {
        if tiles_per_side == 0 {
            return Err(LatticeError::EmptyGrid);
        }
        if distance == 0 || distance.is_multiple_of(2) {
            return Err(LatticeError::InvalidCodeParams(format!(
                "code distance must be odd and positive, got {distance}"
            )));
        }
        Ok(PhysicalLayout {
            tiles_per_side,
            distance,
        })
    }

    /// Tiles per side of the logical grid.
    pub fn tiles_per_side(&self) -> u32 {
        self.tiles_per_side
    }

    /// Code distance.
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Physical qubits per side of the lattice.
    pub fn physical_side(&self) -> u32 {
        2 * self.distance * self.tiles_per_side + 1
    }

    /// Total physical qubit count.
    pub fn physical_qubit_count(&self) -> u64 {
        u64::from(self.physical_side()).pow(2)
    }

    /// The checkerboard role of the physical qubit at `(row, col)`:
    /// even-parity sites are data qubits; odd-parity sites are measurement
    /// ancillas, X or Z depending on row parity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinate is off-lattice.
    pub fn role_at(&self, row: u32, col: u32) -> QubitRole {
        debug_assert!(row < self.physical_side() && col < self.physical_side());
        if (row + col).is_multiple_of(2) {
            QubitRole::Data
        } else if row % 2 == 1 {
            QubitRole::MeasureZ
        } else {
            QubitRole::MeasureX
        }
    }

    /// The physical coordinate of the centre of a logical tile.
    pub fn tile_center(&self, cell: Cell) -> PhysicalQubit {
        let span = 2 * self.distance;
        PhysicalQubit {
            row: cell.row * span + self.distance,
            col: cell.col * span + self.distance,
        }
    }

    /// The physical coordinate of a routing-grid vertex (a channel
    /// intersection between tiles).
    pub fn channel_vertex(&self, v: Vertex) -> PhysicalQubit {
        let span = 2 * self.distance;
        PhysicalQubit {
            row: v.row * span,
            col: v.col * span,
        }
    }

    /// The two defect sites of the double-defect logical qubit living in
    /// `cell`: two same-type measurement ancillas separated by `d` data
    /// qubits inside the tile.
    pub fn defect_pair(&self, cell: Cell) -> (PhysicalQubit, PhysicalQubit) {
        let center = self.tile_center(cell);
        let half = self.distance / 2 + 1;
        // Keep both sites on measurement-ancilla parity (odd sum).
        let fix_parity = |mut q: PhysicalQubit| {
            if (q.row + q.col).is_multiple_of(2) {
                q.col += 1;
            }
            q
        };
        (
            fix_parity(PhysicalQubit {
                row: center.row,
                col: center.col - half,
            }),
            fix_parity(PhysicalQubit {
                row: center.row,
                col: center.col + half,
            }),
        )
    }

    /// The physical measurement qubits along one channel segment of a
    /// braiding path (between two adjacent routing vertices) that must be
    /// disabled to extend a defect through it.
    pub fn segment_ancillas(&self, a: Vertex, b: Vertex) -> Vec<PhysicalQubit> {
        assert!(a.is_adjacent(b), "segments connect adjacent vertices");
        let pa = self.channel_vertex(a);
        let pb = self.channel_vertex(b);
        let mut out = Vec::new();
        let (r0, r1) = (pa.row.min(pb.row), pa.row.max(pb.row));
        let (c0, c1) = (pa.col.min(pb.col), pa.col.max(pb.col));
        for row in r0..=r1 {
            for col in c0..=c1 {
                if (row + col) % 2 == 1 {
                    out.push(PhysicalQubit { row, col });
                }
            }
        }
        out
    }
}

/// The eight phases of one surface-code stabilization cycle (paper
/// Fig. 3b). Every enabled measurement ancilla steps through these in
/// lockstep; eight phases make one *surface code cycle*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CyclePhase {
    /// Initialize the ancilla in |0⟩ (Z) or |+⟩ (X).
    Init,
    /// Hadamard on X ancillas.
    HadamardIn,
    /// CNOT with the north data neighbour.
    CouplingNorth,
    /// CNOT with the west data neighbour.
    CouplingWest,
    /// CNOT with the east data neighbour.
    CouplingEast,
    /// CNOT with the south data neighbour.
    CouplingSouth,
    /// Hadamard on X ancillas.
    HadamardOut,
    /// Measure the ancilla.
    Measure,
}

/// All eight phases in execution order.
pub const CYCLE_PHASES: [CyclePhase; 8] = [
    CyclePhase::Init,
    CyclePhase::HadamardIn,
    CyclePhase::CouplingNorth,
    CyclePhase::CouplingWest,
    CyclePhase::CouplingEast,
    CyclePhase::CouplingSouth,
    CyclePhase::HadamardOut,
    CyclePhase::Measure,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_dimensions() {
        let l = PhysicalLayout::new(10, 33).unwrap();
        assert_eq!(l.physical_side(), 661);
        assert_eq!(l.physical_qubit_count(), 661 * 661);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(PhysicalLayout::new(0, 5).is_err());
        assert!(PhysicalLayout::new(4, 4).is_err());
        assert!(PhysicalLayout::new(4, 0).is_err());
    }

    #[test]
    fn checkerboard_roles() {
        let l = PhysicalLayout::new(2, 3).unwrap();
        assert_eq!(l.role_at(0, 0), QubitRole::Data);
        assert_eq!(l.role_at(0, 1), QubitRole::MeasureX);
        assert_eq!(l.role_at(1, 0), QubitRole::MeasureZ);
        assert_eq!(l.role_at(1, 1), QubitRole::Data);
        // Counts: data on even parity ≈ half the lattice.
        let side = l.physical_side();
        let data = (0..side)
            .flat_map(|r| (0..side).map(move |c| (r, c)))
            .filter(|&(r, c)| l.role_at(r, c) == QubitRole::Data)
            .count() as u64;
        assert_eq!(data, l.physical_qubit_count().div_ceil(2));
    }

    #[test]
    fn tile_centers_are_distinct_and_in_bounds() {
        let l = PhysicalLayout::new(3, 5).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in 0..3 {
            for c in 0..3 {
                let q = l.tile_center(Cell::new(r, c));
                assert!(q.row < l.physical_side() && q.col < l.physical_side());
                assert!(seen.insert(q));
            }
        }
    }

    #[test]
    fn defect_pairs_are_measurement_sites() {
        let l = PhysicalLayout::new(3, 5).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let (d1, d2) = l.defect_pair(Cell::new(r, c));
                assert_ne!(d1, d2);
                for d in [d1, d2] {
                    assert_ne!(
                        l.role_at(d.row, d.col),
                        QubitRole::Data,
                        "defect on data site"
                    );
                }
            }
        }
    }

    #[test]
    fn segment_ancillas_line_the_channel() {
        let l = PhysicalLayout::new(2, 3).unwrap();
        let ancillas = l.segment_ancillas(Vertex::new(0, 0), Vertex::new(0, 1));
        // A horizontal segment spans 2d physical columns on one row: d
        // ancillas at odd parity.
        assert_eq!(ancillas.len(), l.distance() as usize);
        for q in &ancillas {
            assert_eq!(q.row, 0);
            assert_ne!(l.role_at(q.row, q.col), QubitRole::Data);
        }
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn segment_requires_adjacency() {
        let l = PhysicalLayout::new(2, 3).unwrap();
        let _ = l.segment_ancillas(Vertex::new(0, 0), Vertex::new(0, 2));
    }

    #[test]
    fn cycle_has_eight_ordered_phases() {
        assert_eq!(CYCLE_PHASES.len(), 8);
        assert_eq!(CYCLE_PHASES[0], CyclePhase::Init);
        assert_eq!(CYCLE_PHASES[7], CyclePhase::Measure);
    }
}
