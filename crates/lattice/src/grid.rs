//! The routing grid: cells, vertices, and adjacency.

use crate::error::LatticeError;
use crate::geometry::{Cell, Vertex};

/// An `L × L` grid of logical-qubit tiles with its channel routing graph.
///
/// The grid owns no mutable routing state — occupancy lives in
/// [`crate::occupancy::Occupancy`] so that schedulers can snapshot, fork,
/// and roll back reservations cheaply.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::grid::Grid;
/// use autobraid_lattice::geometry::Vertex;
///
/// let grid = Grid::with_capacity_for(10); // ceil(sqrt(10)) = 4 cells/side
/// assert_eq!(grid.cells_per_side(), 4);
/// assert_eq!(grid.vertex_count(), 25);
/// assert_eq!(grid.neighbors(Vertex::new(0, 0)).count(), 2);
/// assert_eq!(grid.neighbors(Vertex::new(2, 2)).count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    cells_per_side: u32,
}

impl Grid {
    /// Creates a grid with `l` cells per side.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::EmptyGrid`] if `l == 0`.
    pub fn new(l: u32) -> Result<Self, LatticeError> {
        if l == 0 {
            return Err(LatticeError::EmptyGrid);
        }
        Ok(Grid { cells_per_side: l })
    }

    /// The smallest square grid that fits `n` logical qubits:
    /// `L = ceil(sqrt(n))`, as in the paper's evaluation platform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_capacity_for(n: usize) -> Self {
        assert!(n > 0, "a grid must hold at least one qubit");
        let l = (n as f64).sqrt().ceil() as u32;
        Grid {
            cells_per_side: l.max(1),
        }
    }

    /// Number of unit cells per side (`L`).
    #[inline]
    pub fn cells_per_side(&self) -> u32 {
        self.cells_per_side
    }

    /// Number of vertices per side (`L + 1`).
    #[inline]
    pub fn vertices_per_side(&self) -> u32 {
        self.cells_per_side + 1
    }

    /// Total number of tiles (`L²`).
    #[inline]
    pub fn cell_count(&self) -> usize {
        (self.cells_per_side as usize).pow(2)
    }

    /// Total number of routing vertices (`(L + 1)²`).
    #[inline]
    pub fn vertex_count(&self) -> usize {
        (self.vertices_per_side() as usize).pow(2)
    }

    /// Whether `v` lies in the grid.
    #[inline]
    pub fn contains_vertex(&self, v: Vertex) -> bool {
        v.row <= self.cells_per_side && v.col <= self.cells_per_side
    }

    /// Whether `c` lies in the grid.
    #[inline]
    pub fn contains_cell(&self, c: Cell) -> bool {
        c.row < self.cells_per_side && c.col < self.cells_per_side
    }

    /// Dense index of a vertex, for occupancy bitmaps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is outside the grid.
    #[inline]
    pub fn vertex_index(&self, v: Vertex) -> usize {
        debug_assert!(self.contains_vertex(v), "{v} outside {self:?}");
        v.row as usize * self.vertices_per_side() as usize + v.col as usize
    }

    /// Inverse of [`Grid::vertex_index`].
    #[inline]
    pub fn vertex_at(&self, index: usize) -> Vertex {
        let side = self.vertices_per_side() as usize;
        Vertex::new((index / side) as u32, (index % side) as u32)
    }

    /// Dense index of a cell, for placement maps.
    #[inline]
    pub fn cell_index(&self, c: Cell) -> usize {
        debug_assert!(self.contains_cell(c), "{c} outside {self:?}");
        c.row as usize * self.cells_per_side as usize + c.col as usize
    }

    /// Inverse of [`Grid::cell_index`].
    #[inline]
    pub fn cell_at(&self, index: usize) -> Cell {
        let side = self.cells_per_side as usize;
        Cell::new((index / side) as u32, (index % side) as u32)
    }

    /// Iterates over all cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        let l = self.cells_per_side;
        (0..l).flat_map(move |r| (0..l).map(move |c| Cell::new(r, c)))
    }

    /// Iterates over all vertices in row-major order.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        let s = self.vertices_per_side();
        (0..s).flat_map(move |r| (0..s).map(move |c| Vertex::new(r, c)))
    }

    /// The 4-neighbours of `v` that lie in the grid (2 at corners, 3 on
    /// borders, 4 in the interior).
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        let l = self.cells_per_side;
        let mut out = [None; 4];
        if v.row > 0 {
            out[0] = Some(Vertex::new(v.row - 1, v.col));
        }
        if v.row < l {
            out[1] = Some(Vertex::new(v.row + 1, v.col));
        }
        if v.col > 0 {
            out[2] = Some(Vertex::new(v.row, v.col - 1));
        }
        if v.col < l {
            out[3] = Some(Vertex::new(v.row, v.col + 1));
        }
        out.into_iter().flatten()
    }

    /// Whether `v` lies on the outer boundary of the grid.
    #[inline]
    pub fn on_boundary(&self, v: Vertex) -> bool {
        v.row == 0 || v.col == 0 || v.row == self.cells_per_side || v.col == self.cells_per_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_size() {
        assert!(matches!(Grid::new(0), Err(LatticeError::EmptyGrid)));
        assert!(Grid::new(1).is_ok());
    }

    #[test]
    fn capacity_sizing_matches_paper() {
        // L = ceil(sqrt(N)) per the evaluation setup.
        assert_eq!(Grid::with_capacity_for(1).cells_per_side(), 1);
        assert_eq!(Grid::with_capacity_for(16).cells_per_side(), 4);
        assert_eq!(Grid::with_capacity_for(17).cells_per_side(), 5);
        assert_eq!(Grid::with_capacity_for(100).cells_per_side(), 10);
        assert_eq!(Grid::with_capacity_for(5000).cells_per_side(), 71);
    }

    #[test]
    fn counts() {
        let g = Grid::new(4).unwrap();
        assert_eq!(g.cell_count(), 16);
        assert_eq!(g.vertex_count(), 25);
        assert_eq!(g.cells().count(), 16);
        assert_eq!(g.vertices().count(), 25);
    }

    #[test]
    fn vertex_index_roundtrip() {
        let g = Grid::new(7).unwrap();
        for (i, v) in g.vertices().enumerate() {
            assert_eq!(g.vertex_index(v), i);
            assert_eq!(g.vertex_at(i), v);
        }
    }

    #[test]
    fn cell_index_roundtrip() {
        let g = Grid::new(5).unwrap();
        for (i, c) in g.cells().enumerate() {
            assert_eq!(g.cell_index(c), i);
            assert_eq!(g.cell_at(i), c);
        }
    }

    #[test]
    fn neighbor_degrees() {
        let g = Grid::new(3).unwrap();
        // Corners have degree 2.
        for v in [
            Vertex::new(0, 0),
            Vertex::new(0, 3),
            Vertex::new(3, 0),
            Vertex::new(3, 3),
        ] {
            assert_eq!(g.neighbors(v).count(), 2, "{v}");
        }
        // Edges have degree 3.
        assert_eq!(g.neighbors(Vertex::new(0, 1)).count(), 3);
        // Interior has degree 4.
        assert_eq!(g.neighbors(Vertex::new(1, 2)).count(), 4);
    }

    #[test]
    fn neighbors_are_adjacent_and_inside() {
        let g = Grid::new(4).unwrap();
        for v in g.vertices() {
            for n in g.neighbors(v) {
                assert!(v.is_adjacent(n));
                assert!(g.contains_vertex(n));
            }
        }
    }

    #[test]
    fn boundary_detection() {
        let g = Grid::new(3).unwrap();
        assert!(g.on_boundary(Vertex::new(0, 2)));
        assert!(g.on_boundary(Vertex::new(3, 1)));
        assert!(g.on_boundary(Vertex::new(2, 0)));
        assert!(!g.on_boundary(Vertex::new(1, 1)));
    }
}
