//! Surface-code lattice substrate for the AutoBraid scheduler.
//!
//! This crate models the hardware platform the paper schedules onto: an
//! `L × L` grid of logical-qubit tiles ([`grid::Grid`]), the channel
//! routing graph between them ([`geometry`]), per-step vertex reservations
//! ([`occupancy::Occupancy`]), and the surface-code error/timing math
//! ([`surface_code`]).
//!
//! Its place in the workspace is described in `DESIGN.md` §4 (crate
//! map); the substitutions it makes relative to the paper's hardware
//! model are in `DESIGN.md` §3.
//!
//! # Quick example
//!
//! ```
//! use autobraid_lattice::grid::Grid;
//! use autobraid_lattice::occupancy::Occupancy;
//! use autobraid_lattice::surface_code::{CodeParams, TimingModel};
//!
//! // The smallest square grid holding 100 logical qubits.
//! let grid = Grid::with_capacity_for(100);
//! assert_eq!(grid.cells_per_side(), 10);
//!
//! // Fresh reservation map for one braiding step.
//! let occ = Occupancy::new(&grid);
//! assert_eq!(occ.occupied_count(), 0);
//!
//! // Paper defaults: d = 33, one cycle = 2.2 µs.
//! let timing = TimingModel::new(CodeParams::default());
//! assert!(timing.params().logical_error_rate() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoder;
pub mod error;
pub mod geometry;
pub mod grid;
pub mod occupancy;
pub mod physical;
pub mod surface_code;

pub use error::LatticeError;
pub use geometry::{BBox, Cell, Vertex};
pub use grid::Grid;
pub use occupancy::Occupancy;
pub use surface_code::{CodeParams, TimingModel};
