//! Syndrome extraction and decoding for one error sector of a planar
//! surface-code patch.
//!
//! The scheduler treats error correction as a substrate that simply works
//! (Threshold Theorem, paper §2); this module makes that substrate
//! concrete enough to *measure*: X errors on a distance-`d` patch flip
//! Z-check syndromes, a greedy matching decoder pairs the defects, and
//! Monte-Carlo sweeps reproduce the exponential logical-error suppression
//! of Eq. 1 (see the `qec_threshold` experiment binary).
//!
//! Model: the Z-checks of the patch form a `d × (d-1)` grid. Data qubits
//! sit on the horizontal links (including one boundary link at each end
//! of every row — `d` per row) and the vertical links between checks. An
//! X error on a link flips the checks it touches; boundary links flip
//! only their single interior check. A logical X is any left-to-right
//! chain, so a residual error is logical iff the combined
//! (error ⊕ correction) chain crosses the patch an odd number of times.

use std::collections::BTreeSet;

/// One data-qubit site of the patch (a link of the check grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Link {
    /// Horizontal link in check row `row`, between check columns
    /// `col - 1` and `col` (so `col = 0` is the left boundary link and
    /// `col = width` the right boundary link). `0 ≤ col ≤ width`.
    Horizontal {
        /// Check row.
        row: u32,
        /// Link column in `0..=width`.
        col: u32,
    },
    /// Vertical link between check rows `row` and `row + 1` in check
    /// column `col`.
    Vertical {
        /// Upper check row.
        row: u32,
        /// Check column.
        col: u32,
    },
}

/// One decoding action over the defect list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Match {
    /// Pair two defects (indices into the syndrome list).
    Pair(usize, usize),
    /// Send one defect to its nearest boundary.
    Boundary(usize),
}

/// A distance-`d` planar patch (one error sector).
///
/// # Examples
///
/// ```
/// use autobraid_lattice::decoder::{Link, Patch};
///
/// let patch = Patch::new(5)?;
/// let error = [Link::Horizontal { row: 2, col: 2 }];
/// let syndrome = patch.syndrome(&error);
/// let correction = patch.decode(&syndrome);
/// assert!(!patch.is_logical_error(&error, &correction));
/// # Ok::<(), autobraid_lattice::LatticeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patch {
    distance: u32,
}

impl Patch {
    /// Creates a distance-`d` patch.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LatticeError::InvalidCodeParams`] unless `d` is odd
    /// and at least 3.
    pub fn new(distance: u32) -> Result<Self, crate::LatticeError> {
        if distance < 3 || distance.is_multiple_of(2) {
            return Err(crate::LatticeError::InvalidCodeParams(format!(
                "patch distance must be odd and >= 3, got {distance}"
            )));
        }
        Ok(Patch { distance })
    }

    /// Code distance.
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Check grid rows (`d`).
    pub fn check_rows(&self) -> u32 {
        self.distance
    }

    /// Check grid columns (`d - 1`).
    pub fn check_cols(&self) -> u32 {
        self.distance - 1
    }

    /// Every data-qubit link of the patch.
    pub fn links(&self) -> Vec<Link> {
        let mut out = Vec::new();
        for row in 0..self.check_rows() {
            for col in 0..=self.check_cols() {
                out.push(Link::Horizontal { row, col });
            }
        }
        for row in 0..self.check_rows() - 1 {
            for col in 0..self.check_cols() {
                out.push(Link::Vertical { row, col });
            }
        }
        out
    }

    /// The interior checks a link touches (one for boundary links, two
    /// otherwise).
    pub fn touched_checks(&self, link: Link) -> Vec<(u32, u32)> {
        match link {
            Link::Horizontal { row, col } => {
                let mut checks = Vec::new();
                if col > 0 {
                    checks.push((row, col - 1));
                }
                if col < self.check_cols() {
                    checks.push((row, col));
                }
                checks
            }
            Link::Vertical { row, col } => vec![(row, col), (row + 1, col)],
        }
    }

    /// Syndrome of an error set: the checks flipped an odd number of
    /// times.
    pub fn syndrome(&self, errors: &[Link]) -> Vec<(u32, u32)> {
        let mut flipped: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &link in errors {
            for check in self.touched_checks(link) {
                if !flipped.insert(check) {
                    flipped.remove(&check);
                }
            }
        }
        flipped.into_iter().collect()
    }

    /// Minimum-weight matching decoder. Each defect is either paired with
    /// another defect (cost = Manhattan distance) or matched to its
    /// nearest boundary; up to 16 defects the matching is *exact* (bitmask
    /// dynamic programming, the MWPM solution), beyond that a greedy
    /// min-edge loop takes over. Always clears the syndrome; exactness on
    /// sparse syndromes guarantees every error of weight ≤ (d-1)/2 decodes
    /// without a logical fault.
    pub fn decode(&self, syndrome: &[(u32, u32)]) -> Vec<Link> {
        let defects: Vec<(u32, u32)> = syndrome.to_vec();
        let pairs = if defects.len() <= 16 {
            self.match_exact(&defects)
        } else {
            self.match_greedy(&defects)
        };
        let mut correction = Vec::new();
        for action in pairs {
            match action {
                Match::Pair(i, j) => self.correct_between(defects[j], defects[i], &mut correction),
                Match::Boundary(i) => self.correct_to_boundary(defects[i], &mut correction),
            }
        }
        correction
    }

    fn boundary_cost(&self, d: (u32, u32)) -> u32 {
        (d.1 + 1).min(self.check_cols() - d.1)
    }

    /// Exact minimum-weight matching over ≤ 16 defects: `f(S)` = cheapest
    /// clearing cost of defect subset `S`; the lowest defect of `S` either
    /// exits to its boundary or pairs with another member.
    fn match_exact(&self, defects: &[(u32, u32)]) -> Vec<Match> {
        let n = defects.len();
        debug_assert!(n <= 16);
        let full = (1usize << n) - 1;
        let pair_cost = |a: (u32, u32), b: (u32, u32)| -> u64 {
            u64::from(a.0.abs_diff(b.0) + a.1.abs_diff(b.1))
        };
        let mut best: Vec<u64> = vec![u64::MAX; full + 1];
        let mut choice: Vec<Match> = vec![Match::Boundary(0); full + 1];
        best[0] = 0;
        for mask in 1..=full {
            let i = mask.trailing_zeros() as usize;
            // Boundary exit for defect i.
            let sub = mask & !(1 << i);
            if best[sub] != u64::MAX {
                let cost = best[sub] + u64::from(self.boundary_cost(defects[i]));
                if cost < best[mask] {
                    best[mask] = cost;
                    choice[mask] = Match::Boundary(i);
                }
            }
            // Pair i with any other member j.
            for j in (i + 1)..n {
                if mask & (1 << j) == 0 {
                    continue;
                }
                let sub = mask & !(1 << i) & !(1 << j);
                if best[sub] == u64::MAX {
                    continue;
                }
                let cost = best[sub] + pair_cost(defects[i], defects[j]);
                if cost < best[mask] {
                    best[mask] = cost;
                    choice[mask] = Match::Pair(i, j);
                }
            }
        }
        // Reconstruct.
        let mut actions = Vec::new();
        let mut mask = full;
        while mask != 0 {
            let action = choice[mask];
            match action {
                Match::Boundary(i) => mask &= !(1 << i),
                Match::Pair(i, j) => mask &= !(1 << i) & !(1 << j),
            }
            actions.push(action);
        }
        actions
    }

    /// Greedy fallback for dense syndromes: repeatedly apply the globally
    /// cheapest single action (closest pair, or cheapest boundary exit).
    fn match_greedy(&self, defects: &[(u32, u32)]) -> Vec<Match> {
        let n = defects.len();
        let mut alive: Vec<bool> = vec![true; n];
        let mut remaining = n;
        let mut actions = Vec::new();
        let pair_cost =
            |a: (u32, u32), b: (u32, u32)| -> u32 { a.0.abs_diff(b.0) + a.1.abs_diff(b.1) };
        while remaining > 0 {
            let mut best: Option<(Match, u32)> = None;
            for i in 0..n {
                if !alive[i] {
                    continue;
                }
                let bc = self.boundary_cost(defects[i]);
                if best.as_ref().is_none_or(|&(_, c)| bc < c) {
                    best = Some((Match::Boundary(i), bc));
                }
                for j in (i + 1)..n {
                    if !alive[j] {
                        continue;
                    }
                    let pc = pair_cost(defects[i], defects[j]);
                    if best.as_ref().is_none_or(|&(_, c)| pc < c) {
                        best = Some((Match::Pair(i, j), pc));
                    }
                }
            }
            let (action, _) = best.expect("remaining > 0");
            match action {
                Match::Boundary(i) => {
                    alive[i] = false;
                    remaining -= 1;
                }
                Match::Pair(i, j) => {
                    alive[i] = false;
                    alive[j] = false;
                    remaining -= 2;
                }
            }
            actions.push(action);
        }
        actions
    }

    /// Appends an L-shaped correction chain between two checks.
    fn correct_between(&self, a: (u32, u32), b: (u32, u32), out: &mut Vec<Link>) {
        // Vertical leg in a's column, then horizontal leg in b's row.
        let (r0, r1) = (a.0.min(b.0), a.0.max(b.0));
        for row in r0..r1 {
            out.push(Link::Vertical { row, col: a.1 });
        }
        let (c0, c1) = (a.1.min(b.1), a.1.max(b.1));
        for col in c0..c1 {
            out.push(Link::Horizontal {
                row: b.0,
                col: col + 1,
            });
        }
    }

    /// Appends a straight chain from a check to its nearest boundary.
    fn correct_to_boundary(&self, d: (u32, u32), out: &mut Vec<Link>) {
        let (row, col) = d;
        if col < self.check_cols() - col {
            // Left boundary: links col, col-1, …, 0.
            for c in 0..=col {
                out.push(Link::Horizontal { row, col: c });
            }
        } else {
            for c in col + 1..=self.check_cols() {
                out.push(Link::Horizontal { row, col: c });
            }
        }
    }

    /// Whether `errors ⊕ correction` implements a logical X: the combined
    /// chain crosses the patch left-to-right an odd number of times
    /// (parity of horizontal links crossing the vertical cut after link
    /// column 0, which equals the crossing parity of any cut for a closed
    /// chain).
    pub fn is_logical_error(&self, errors: &[Link], correction: &[Link]) -> bool {
        let mut combined: BTreeSet<Link> = BTreeSet::new();
        for &l in errors.iter().chain(correction) {
            if !combined.insert(l) {
                combined.remove(&l);
            }
        }
        debug_assert!(
            self.syndrome(&combined.iter().copied().collect::<Vec<_>>())
                .is_empty(),
            "correction must return the syndrome to zero"
        );
        // Count crossings of the leftmost cut: boundary links at col 0.
        combined
            .iter()
            .filter(|l| matches!(l, Link::Horizontal { col: 0, .. }))
            .count()
            % 2
            == 1
    }

    /// One Monte-Carlo round: each link errs independently with
    /// probability `p` (driven by the caller-provided uniform samples in
    /// `[0,1)`, one per link in [`Patch::links`] order). Returns whether
    /// decoding left a logical error.
    pub fn sample_round(&self, p: f64, uniform_samples: &[f64]) -> bool {
        let links = self.links();
        assert_eq!(
            uniform_samples.len(),
            links.len(),
            "need one uniform sample per link ({})",
            links.len()
        );
        let errors: Vec<Link> = links
            .into_iter()
            .zip(uniform_samples)
            .filter(|&(_, &u)| u < p)
            .map(|(l, _)| l)
            .collect();
        let syndrome = self.syndrome(&errors);
        let correction = self.decode(&syndrome);
        self.is_logical_error(&errors, &correction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_validation() {
        assert!(Patch::new(2).is_err());
        assert!(Patch::new(4).is_err());
        assert!(Patch::new(1).is_err());
        assert!(Patch::new(3).is_ok());
    }

    #[test]
    fn link_and_check_counts() {
        let p = Patch::new(5).unwrap();
        // Horizontal: d rows × (d-1+1+... ) = d × d; vertical: (d-1)(d-1).
        assert_eq!(p.links().len(), (5 * 5 + 4 * 4) as usize);
        let unique: BTreeSet<Link> = p.links().into_iter().collect();
        assert_eq!(unique.len(), p.links().len());
    }

    #[test]
    fn empty_error_empty_syndrome() {
        let p = Patch::new(5).unwrap();
        assert!(p.syndrome(&[]).is_empty());
        assert!(p.decode(&[]).is_empty());
        assert!(!p.is_logical_error(&[], &[]));
    }

    #[test]
    fn every_single_error_is_corrected() {
        for d in [3u32, 5, 7] {
            let p = Patch::new(d).unwrap();
            for link in p.links() {
                let errors = [link];
                let syndrome = p.syndrome(&errors);
                assert!(!syndrome.is_empty(), "{link:?} must flip a check");
                let correction = p.decode(&syndrome);
                assert!(
                    !p.is_logical_error(&errors, &correction),
                    "d={d}: single error {link:?} decoded into a logical error"
                );
            }
        }
    }

    #[test]
    fn adjacent_pair_errors_are_corrected() {
        let p = Patch::new(5).unwrap();
        for row in 0..p.check_rows() {
            for col in 1..p.check_cols() {
                let errors = [
                    Link::Horizontal { row, col },
                    Link::Horizontal { row, col: col + 1 },
                ];
                let correction = p.decode(&p.syndrome(&errors));
                assert!(!p.is_logical_error(&errors, &correction));
            }
        }
    }

    #[test]
    fn full_row_is_a_logical_operator() {
        let p = Patch::new(5).unwrap();
        let row_chain: Vec<Link> = (0..=p.check_cols())
            .map(|col| Link::Horizontal { row: 2, col })
            .collect();
        assert!(
            p.syndrome(&row_chain).is_empty(),
            "logical operators commute with checks"
        );
        assert!(p.is_logical_error(&row_chain, &[]));
    }

    #[test]
    fn all_weight_two_errors_are_corrected() {
        // d = 7 tolerates any weight ≤ 3 error; check every weight-2
        // combination exhaustively (exact matching must never produce a
        // logical fault).
        let p = Patch::new(7).unwrap();
        let links = p.links();
        for i in 0..links.len() {
            for j in i + 1..links.len() {
                let errors = [links[i], links[j]];
                let correction = p.decode(&p.syndrome(&errors));
                assert!(
                    !p.is_logical_error(&errors, &correction),
                    "weight-2 error {errors:?} mis-decoded"
                );
            }
        }
    }

    #[test]
    fn sampled_weight_three_errors_are_corrected() {
        use autobraid_telemetry::Rng64;
        let p = Patch::new(7).unwrap();
        let links = p.links();
        let mut rng = Rng64::seed_from_u64(5);
        for _ in 0..500 {
            let errors: Vec<Link> = rng.sample(&links, 3);
            let correction = p.decode(&p.syndrome(&errors));
            assert!(
                !p.is_logical_error(&errors, &correction),
                "weight-3 error {errors:?} mis-decoded at d=7"
            );
        }
    }

    #[test]
    fn decoder_always_clears_the_syndrome() {
        use autobraid_telemetry::Rng64;
        let p = Patch::new(7).unwrap();
        let mut rng = Rng64::seed_from_u64(21);
        for _ in 0..50 {
            let errors: Vec<Link> = p
                .links()
                .into_iter()
                .filter(|_| rng.gen_bool(0.08))
                .collect();
            let syndrome = p.syndrome(&errors);
            let correction = p.decode(&syndrome);
            // is_logical_error debug-asserts the syndrome clears; verify
            // explicitly too.
            let mut combined = errors.clone();
            combined.extend(&correction);
            let residual: Vec<Link> = {
                let mut set: BTreeSet<Link> = BTreeSet::new();
                for l in combined {
                    if !set.insert(l) {
                        set.remove(&l);
                    }
                }
                set.into_iter().collect()
            };
            assert!(p.syndrome(&residual).is_empty());
        }
    }

    #[test]
    fn logical_error_rate_drops_with_distance() {
        use autobraid_telemetry::Rng64;
        // Physical error rate well below threshold: bigger codes must fail
        // less often — the Threshold Theorem in action (paper Eq. 1).
        let p_phys = 0.06;
        let trials = 2000;
        let mut rates = Vec::new();
        for d in [3u32, 5, 7] {
            let patch = Patch::new(d).unwrap();
            let n_links = patch.links().len();
            let mut rng = Rng64::seed_from_u64(1000 + u64::from(d));
            let failures = (0..trials)
                .filter(|_| {
                    let samples: Vec<f64> = (0..n_links).map(|_| rng.gen_f64()).collect();
                    patch.sample_round(p_phys, &samples)
                })
                .count();
            rates.push(failures as f64 / trials as f64);
        }
        assert!(
            rates[0] > rates[2],
            "logical error rate must drop from d=3 to d=7: {rates:?}"
        );
    }
}
