//! Error types for lattice construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced by lattice construction and surface-code parameter
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LatticeError {
    /// A grid must have at least one cell per side.
    EmptyGrid,
    /// Surface-code parameters violate the model's preconditions.
    InvalidCodeParams(String),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::EmptyGrid => write!(f, "grid must have at least one cell per side"),
            LatticeError::InvalidCodeParams(msg) => {
                write!(f, "invalid surface code parameters: {msg}")
            }
        }
    }
}

impl Error for LatticeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        for e in [
            LatticeError::EmptyGrid,
            LatticeError::InvalidCodeParams("p out of range".into()),
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(LatticeError::EmptyGrid);
    }
}
