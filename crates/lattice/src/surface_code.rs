//! Surface-code parameters: logical error rate, code distance selection,
//! physical-resource and timing models.
//!
//! The logical error rate of a distance-`d` double-defect logical qubit is
//! (paper Eq. 1, after Fowler et al.):
//!
//! ```text
//! P_L = 0.03 * (p / p_th)^((d + 1) / 2)
//! ```

use crate::error::LatticeError;

/// Prefactor of the logical error-rate model (paper Eq. 1).
pub const LOGICAL_ERROR_PREFACTOR: f64 = 0.03;

/// Default physical error rate: 0.1%, "what today's best superconducting
/// quantum devices can achieve" (paper §2).
pub const DEFAULT_PHYSICAL_ERROR_RATE: f64 = 1e-3;

/// Default threshold error rate: 0.57%, same as Fowler et al. (paper §2).
pub const DEFAULT_THRESHOLD_ERROR_RATE: f64 = 5.7e-3;

/// Duration of one surface code cycle in microseconds (paper §4.1, faithful
/// to recent superconducting implementation parameters from \[10\]).
pub const DEFAULT_CYCLE_TIME_US: f64 = 2.2;

/// Code distance used throughout the paper's Table 2 overview.
pub const DEFAULT_CODE_DISTANCE: u32 = 33;

/// Surface-code configuration: physical error rate, threshold, and code
/// distance.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::surface_code::CodeParams;
///
/// let params = CodeParams::default();           // p = 0.1%, p_th = 0.57%, d = 33
/// assert!(params.logical_error_rate() < 1e-12); // far below physical rate
///
/// let strong = CodeParams::for_target_error(1e-22)?;
/// assert!(strong.distance() >= 51);
/// # Ok::<(), autobraid_lattice::error::LatticeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeParams {
    physical_error_rate: f64,
    threshold_error_rate: f64,
    distance: u32,
}

impl Default for CodeParams {
    fn default() -> Self {
        CodeParams {
            physical_error_rate: DEFAULT_PHYSICAL_ERROR_RATE,
            threshold_error_rate: DEFAULT_THRESHOLD_ERROR_RATE,
            distance: DEFAULT_CODE_DISTANCE,
        }
    }
}

impl CodeParams {
    /// Creates parameters from explicit values.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::InvalidCodeParams`] if either rate is outside
    /// `(0, 1)`, if `p >= p_th` (the Threshold Theorem precondition fails),
    /// or if `distance` is zero or even (defect codes use odd distances).
    pub fn new(
        physical_error_rate: f64,
        threshold_error_rate: f64,
        distance: u32,
    ) -> Result<Self, LatticeError> {
        let valid_rate = |r: f64| r > 0.0 && r < 1.0 && r.is_finite();
        if !valid_rate(physical_error_rate)
            || !valid_rate(threshold_error_rate)
            || physical_error_rate >= threshold_error_rate
        {
            return Err(LatticeError::InvalidCodeParams(format!(
                "need 0 < p < p_th < 1, got p={physical_error_rate}, p_th={threshold_error_rate}"
            )));
        }
        if distance == 0 || distance.is_multiple_of(2) {
            return Err(LatticeError::InvalidCodeParams(format!(
                "code distance must be odd and positive, got {distance}"
            )));
        }
        Ok(CodeParams {
            physical_error_rate,
            threshold_error_rate,
            distance,
        })
    }

    /// Default rates with an explicit code distance.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CodeParams::new`].
    pub fn with_distance(distance: u32) -> Result<Self, LatticeError> {
        CodeParams::new(
            DEFAULT_PHYSICAL_ERROR_RATE,
            DEFAULT_THRESHOLD_ERROR_RATE,
            distance,
        )
    }

    /// The smallest (odd) code distance whose logical error rate is at or
    /// below `target`, using the default physical/threshold rates. This is
    /// how the evaluation scales `d` with computation size (`d` increases
    /// when `P_L` decreases).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::InvalidCodeParams`] if `target` is not in
    /// `(0, 1)`.
    pub fn for_target_error(target: f64) -> Result<Self, LatticeError> {
        if !(target > 0.0 && target < 1.0 && target.is_finite()) {
            return Err(LatticeError::InvalidCodeParams(format!(
                "target logical error rate must be in (0,1), got {target}"
            )));
        }
        // P_L = 0.03 * r^((d+1)/2)  with  r = p / p_th < 1
        // =>  (d+1)/2 >= ln(target / 0.03) / ln(r)
        let r = DEFAULT_PHYSICAL_ERROR_RATE / DEFAULT_THRESHOLD_ERROR_RATE;
        let exponent = (target / LOGICAL_ERROR_PREFACTOR).ln() / r.ln();
        let mut d = (2.0 * exponent.max(0.0) - 1.0).ceil().max(1.0) as u32;
        if d.is_multiple_of(2) {
            d += 1;
        }
        let params = CodeParams::with_distance(d)?;
        debug_assert!(params.logical_error_rate() <= target * (1.0 + 1e-9));
        Ok(params)
    }

    /// Physical per-operation error rate `p`.
    #[inline]
    pub fn physical_error_rate(&self) -> f64 {
        self.physical_error_rate
    }

    /// Fault-tolerance threshold `p_th`.
    #[inline]
    pub fn threshold_error_rate(&self) -> f64 {
        self.threshold_error_rate
    }

    /// Code distance `d`.
    #[inline]
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Logical error rate per logical qubit (paper Eq. 1).
    pub fn logical_error_rate(&self) -> f64 {
        let ratio = self.physical_error_rate / self.threshold_error_rate;
        LOGICAL_ERROR_PREFACTOR * ratio.powf(f64::from(self.distance + 1) / 2.0)
    }

    /// Physical qubits required per logical-qubit tile.
    ///
    /// A tile must hold a double-defect logical qubit (two defects of
    /// circumference `~d` separated by `~d`) plus the surrounding channel
    /// qubits, giving a footprint of roughly `(2d)²` data + measurement
    /// qubits. The constant matters only for resource reporting, never for
    /// scheduling decisions.
    pub fn physical_qubits_per_tile(&self) -> u64 {
        let d = u64::from(self.distance);
        (2 * d).pow(2)
    }

    /// Total physical qubits for a lattice of `tiles` logical tiles.
    pub fn physical_qubits(&self, tiles: usize) -> u64 {
        self.physical_qubits_per_tile() * tiles as u64
    }
}

/// Latency model translating braiding steps into surface code cycles and
/// wall-clock time.
///
/// Braiding is latency-insensitive in *path length*, but a braid still
/// spans a fixed number of surface code cycles: moving a defect a long
/// distance is done in a constant number of lattice deformations, each of
/// which must be stabilized for `d` cycles. We charge `2d` cycles per
/// braiding step (extend + contract) and `d` cycles per local single-qubit
/// layer; all schedulers are charged identically, so every relative result
/// is independent of these constants.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::surface_code::{CodeParams, TimingModel};
///
/// let timing = TimingModel::new(CodeParams::default());
/// assert_eq!(timing.braid_step_cycles(), 66);      // 2d with d = 33
/// assert!((timing.cycle_time_us() - 2.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    params: CodeParams,
    cycle_time_us: f64,
}

impl TimingModel {
    /// Creates the timing model for `params` with the default 2.2 µs cycle.
    pub fn new(params: CodeParams) -> Self {
        TimingModel {
            params,
            cycle_time_us: DEFAULT_CYCLE_TIME_US,
        }
    }

    /// Overrides the surface-code cycle duration.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_time_us` is not positive and finite.
    pub fn with_cycle_time(mut self, cycle_time_us: f64) -> Self {
        assert!(
            cycle_time_us > 0.0 && cycle_time_us.is_finite(),
            "cycle time must be positive, got {cycle_time_us}"
        );
        self.cycle_time_us = cycle_time_us;
        self
    }

    /// The underlying code parameters.
    #[inline]
    pub fn params(&self) -> &CodeParams {
        &self.params
    }

    /// Duration of one surface code cycle in microseconds.
    #[inline]
    pub fn cycle_time_us(&self) -> f64 {
        self.cycle_time_us
    }

    /// Surface code cycles consumed by one braiding step (`2d`).
    #[inline]
    pub fn braid_step_cycles(&self) -> u64 {
        2 * u64::from(self.params.distance())
    }

    /// Surface code cycles consumed by one local single-qubit layer (`d`).
    #[inline]
    pub fn local_step_cycles(&self) -> u64 {
        u64::from(self.params.distance())
    }

    /// Converts a cycle count to microseconds.
    #[inline]
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_time_us
    }

    /// Converts a cycle count to seconds.
    #[inline]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        self.cycles_to_us(cycles) * 1e-6
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::new(CodeParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = CodeParams::default();
        assert_eq!(p.distance(), 33);
        assert!((p.physical_error_rate() - 1e-3).abs() < 1e-15);
        assert!((p.threshold_error_rate() - 5.7e-3).abs() < 1e-15);
    }

    #[test]
    fn paper_example_distance_55() {
        // Paper §2: p = 0.1%, p_th = 0.57%, d = 55 => P_L ≈ 9.334e-23.
        let p = CodeParams::with_distance(55).unwrap();
        let pl = p.logical_error_rate();
        assert!(pl > 1e-23 && pl < 1e-21, "P_L = {pl}");
    }

    #[test]
    fn error_rate_decreases_with_distance() {
        let mut last = 1.0;
        for d in [3, 5, 11, 21, 33, 55] {
            let pl = CodeParams::with_distance(d).unwrap().logical_error_rate();
            assert!(pl < last, "d={d}: {pl} !< {last}");
            last = pl;
        }
    }

    #[test]
    fn rejects_bad_params() {
        assert!(CodeParams::new(0.0, 0.0057, 33).is_err());
        assert!(
            CodeParams::new(1e-3, 1e-4, 33).is_err(),
            "p above threshold"
        );
        assert!(CodeParams::new(1e-3, 5.7e-3, 0).is_err());
        assert!(CodeParams::new(1e-3, 5.7e-3, 32).is_err(), "even distance");
        assert!(CodeParams::new(f64::NAN, 5.7e-3, 33).is_err());
    }

    #[test]
    fn target_error_selection_is_minimal_and_odd() {
        for target in [1e-6, 1e-10, 1e-15, 1e-22] {
            let p = CodeParams::for_target_error(target).unwrap();
            assert!(p.distance() % 2 == 1);
            assert!(p.logical_error_rate() <= target);
            if p.distance() > 2 {
                let weaker = CodeParams::with_distance(p.distance() - 2).unwrap();
                assert!(
                    weaker.logical_error_rate() > target,
                    "distance {} not minimal for {target}",
                    p.distance()
                );
            }
        }
    }

    #[test]
    fn target_error_rejects_out_of_range() {
        assert!(CodeParams::for_target_error(0.0).is_err());
        assert!(CodeParams::for_target_error(1.0).is_err());
        assert!(CodeParams::for_target_error(-1e-5).is_err());
    }

    #[test]
    fn physical_resources_scale_with_tiles() {
        let p = CodeParams::default();
        assert_eq!(p.physical_qubits(100), 100 * p.physical_qubits_per_tile());
        assert!(p.physical_qubits_per_tile() > u64::from(p.distance()).pow(2));
    }

    #[test]
    fn timing_conversions() {
        let t = TimingModel::default();
        assert_eq!(t.braid_step_cycles(), 66);
        assert_eq!(t.local_step_cycles(), 33);
        assert!((t.cycles_to_us(100) - 220.0).abs() < 1e-9);
        assert!((t.cycles_to_seconds(1_000_000) - 2.2).abs() < 1e-9);
        let fast = t.with_cycle_time(1.0);
        assert!((fast.cycles_to_us(100) - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cycle time must be positive")]
    fn timing_rejects_nonpositive_cycle() {
        let _ = TimingModel::default().with_cycle_time(0.0);
    }
}
