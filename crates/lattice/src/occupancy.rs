//! Per-step reservation of routing vertices.
//!
//! During one braiding step, every vertex used by a scheduled braiding path
//! is exclusively reserved ("the vertices used by this path cannot be used
//! by other braiding paths"). The scheduler clears the map between steps.

use crate::geometry::{BBox, Vertex};
use crate::grid::Grid;

/// A bitmap of reserved routing vertices for one braiding step.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::grid::Grid;
/// use autobraid_lattice::occupancy::Occupancy;
/// use autobraid_lattice::geometry::Vertex;
///
/// let grid = Grid::new(4)?;
/// let mut occ = Occupancy::new(&grid);
/// let path = [Vertex::new(0, 0), Vertex::new(0, 1), Vertex::new(1, 1)];
/// assert!(occ.try_reserve(&grid, path.iter().copied()));
/// assert!(occ.is_occupied(&grid, Vertex::new(0, 1)));
/// assert!(!occ.try_reserve(&grid, [Vertex::new(1, 1)].into_iter()));
/// # Ok::<(), autobraid_lattice::error::LatticeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occupancy {
    bits: Vec<u64>,
    occupied: usize,
    capacity: usize,
}

impl Occupancy {
    /// Creates an empty occupancy map for `grid`.
    pub fn new(grid: &Grid) -> Self {
        let capacity = grid.vertex_count();
        Occupancy {
            bits: vec![0; capacity.div_ceil(64)],
            occupied: 0,
            capacity,
        }
    }

    /// Whether `v` is currently reserved.
    #[inline]
    pub fn is_occupied(&self, grid: &Grid, v: Vertex) -> bool {
        let i = grid.vertex_index(v);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether `v` is free.
    #[inline]
    pub fn is_free(&self, grid: &Grid, v: Vertex) -> bool {
        !self.is_occupied(grid, v)
    }

    /// Reserves a single vertex. Returns `false` (and reserves nothing) if
    /// it was already taken.
    pub fn reserve(&mut self, grid: &Grid, v: Vertex) -> bool {
        let i = grid.vertex_index(v);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.occupied += 1;
        true
    }

    /// Atomically reserves every vertex of a path. If any vertex is already
    /// reserved, nothing is changed and `false` is returned.
    pub fn try_reserve<I>(&mut self, grid: &Grid, path: I) -> bool
    where
        I: IntoIterator<Item = Vertex> + Clone,
    {
        if path.clone().into_iter().any(|v| self.is_occupied(grid, v)) {
            return false;
        }
        for v in path {
            let reserved = self.reserve(grid, v);
            debug_assert!(reserved, "duplicate vertex within one path");
        }
        true
    }

    /// Releases a previously reserved vertex.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` was not reserved.
    pub fn release(&mut self, grid: &Grid, v: Vertex) {
        let i = grid.vertex_index(v);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        debug_assert!(self.bits[word] & mask != 0, "releasing free vertex {v}");
        if self.bits[word] & mask != 0 {
            self.bits[word] &= !mask;
            self.occupied -= 1;
        }
    }

    /// Releases every vertex of a path.
    pub fn release_path<I: IntoIterator<Item = Vertex>>(&mut self, grid: &Grid, path: I) {
        for v in path {
            self.release(grid, v);
        }
    }

    /// Clears all reservations (start of a new braiding step).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.occupied = 0;
    }

    /// Number of reserved vertices.
    #[inline]
    pub fn occupied_count(&self) -> usize {
        self.occupied
    }

    /// Fraction of routing vertices reserved, in `[0, 1]` — the paper's
    /// *resource usage ratio* for one step.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupied as f64 / self.capacity as f64
        }
    }

    /// Whether any vertex inside or on the boundary of `bbox` is
    /// reserved, in O(words of the box) instead of O(vertices of the
    /// box): each bbox row is a contiguous bit range in the row-major
    /// bitmap, tested with three masked word operations. Routers use
    /// this to decide whether a region routed against a snapshot is
    /// still untouched when its turn to commit arrives.
    ///
    /// # Examples
    ///
    /// ```
    /// use autobraid_lattice::{BBox, Grid, Occupancy, Vertex};
    ///
    /// let grid = Grid::new(4)?;
    /// let mut occ = Occupancy::new(&grid);
    /// occ.reserve(&grid, Vertex::new(2, 2));
    /// assert!(occ.any_in_bbox(&grid, &BBox::new(1, 1, 3, 3)));
    /// assert!(!occ.any_in_bbox(&grid, &BBox::new(0, 0, 1, 4)));
    /// # Ok::<(), autobraid_lattice::LatticeError>(())
    /// ```
    pub fn any_in_bbox(&self, grid: &Grid, bbox: &BBox) -> bool {
        if self.occupied == 0 {
            return false;
        }
        let side = grid.vertices_per_side() as usize;
        debug_assert!(bbox.max_row < side as u32 && bbox.max_col < side as u32);
        for row in bbox.min_row..=bbox.max_row {
            let start = row as usize * side + bbox.min_col as usize;
            let end = row as usize * side + bbox.max_col as usize;
            let (w0, w1) = (start / 64, end / 64);
            let head = u64::MAX << (start % 64);
            let tail = u64::MAX >> (63 - end % 64);
            if w0 == w1 {
                if self.bits[w0] & head & tail != 0 {
                    return true;
                }
            } else if self.bits[w0] & head != 0
                || self.bits[w1] & tail != 0
                || self.bits[w0 + 1..w1].iter().any(|&w| w != 0)
            {
                return true;
            }
        }
        false
    }

    /// Reference implementation of [`Occupancy::any_in_bbox`]: a plain
    /// per-vertex scan. Kept for differential tests.
    #[cfg(any(test, feature = "reference"))]
    pub fn any_in_bbox_reference(&self, grid: &Grid, bbox: &BBox) -> bool {
        bbox.vertices().any(|v| self.is_occupied(grid, v))
    }

    /// Marks every vertex reserved in `other` as reserved here too
    /// (set union). Used by time-sliced routers that must find paths free
    /// across several consecutive windows.
    ///
    /// # Panics
    ///
    /// Panics if the two maps belong to differently sized grids.
    pub fn union_with(&mut self, other: &Occupancy) {
        assert_eq!(
            self.capacity, other.capacity,
            "occupancy maps of different grids"
        );
        let mut occupied = 0usize;
        for (word, &other_word) in self.bits.iter_mut().zip(&other.bits) {
            *word |= other_word;
            occupied += word.count_ones() as usize;
        }
        self.occupied = occupied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(4).unwrap()
    }

    #[test]
    fn starts_empty() {
        let g = grid();
        let occ = Occupancy::new(&g);
        assert_eq!(occ.occupied_count(), 0);
        assert_eq!(occ.utilization(), 0.0);
        for v in g.vertices() {
            assert!(occ.is_free(&g, v));
        }
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let g = grid();
        let mut occ = Occupancy::new(&g);
        let v = Vertex::new(2, 3);
        assert!(occ.reserve(&g, v));
        assert!(occ.is_occupied(&g, v));
        assert!(!occ.reserve(&g, v), "double reserve must fail");
        assert_eq!(occ.occupied_count(), 1);
        occ.release(&g, v);
        assert!(occ.is_free(&g, v));
        assert_eq!(occ.occupied_count(), 0);
    }

    #[test]
    fn try_reserve_is_atomic() {
        let g = grid();
        let mut occ = Occupancy::new(&g);
        assert!(occ.reserve(&g, Vertex::new(0, 2)));
        // Path crosses the reserved vertex: nothing else must be taken.
        let path = [Vertex::new(0, 0), Vertex::new(0, 1), Vertex::new(0, 2)];
        assert!(!occ.try_reserve(&g, path.iter().copied()));
        assert!(occ.is_free(&g, Vertex::new(0, 0)));
        assert!(occ.is_free(&g, Vertex::new(0, 1)));
        assert_eq!(occ.occupied_count(), 1);
    }

    #[test]
    fn utilization_counts_fraction() {
        let g = grid(); // 25 vertices
        let mut occ = Occupancy::new(&g);
        for v in [Vertex::new(0, 0), Vertex::new(1, 1), Vertex::new(2, 2)] {
            assert!(occ.reserve(&g, v));
        }
        assert!((occ.utilization() - 3.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let g = grid();
        let mut occ = Occupancy::new(&g);
        for v in g.vertices().take(10) {
            occ.reserve(&g, v);
        }
        occ.clear();
        assert_eq!(occ.occupied_count(), 0);
        assert!(g.vertices().all(|v| occ.is_free(&g, v)));
    }

    #[test]
    fn any_in_bbox_matches_reference_on_random_maps() {
        use autobraid_telemetry::Rng64;
        let mut rng = Rng64::seed_from_u64(17);
        // Side 9 (grid 8) makes rows span word boundaries at every
        // alignment; side 4 keeps whole boxes inside one word.
        for l in [3u32, 8, 12] {
            let g = Grid::new(l).unwrap();
            for _ in 0..40 {
                let mut occ = Occupancy::new(&g);
                for v in g.vertices() {
                    if rng.gen_bool(0.15) {
                        occ.reserve(&g, v);
                    }
                }
                for _ in 0..25 {
                    let r0 = rng.gen_range(0..l + 1);
                    let r1 = rng.gen_range(0..l + 1);
                    let c0 = rng.gen_range(0..l + 1);
                    let c1 = rng.gen_range(0..l + 1);
                    let bbox = BBox::new(r0.min(r1), c0.min(c1), r0.max(r1), c0.max(c1));
                    assert_eq!(
                        occ.any_in_bbox(&g, &bbox),
                        occ.any_in_bbox_reference(&g, &bbox),
                        "grid {l}, bbox {bbox:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn any_in_bbox_empty_map_is_false() {
        let g = Grid::new(8).unwrap();
        let occ = Occupancy::new(&g);
        assert!(!occ.any_in_bbox(&g, &BBox::new(0, 0, 8, 8)));
    }

    #[test]
    fn release_path_frees_all() {
        let g = grid();
        let mut occ = Occupancy::new(&g);
        let path = [Vertex::new(3, 0), Vertex::new(3, 1), Vertex::new(4, 1)];
        assert!(occ.try_reserve(&g, path.iter().copied()));
        occ.release_path(&g, path.iter().copied());
        assert_eq!(occ.occupied_count(), 0);
    }
}
