//! Per-step reservation of routing vertices.
//!
//! During one braiding step, every vertex used by a scheduled braiding path
//! is exclusively reserved ("the vertices used by this path cannot be used
//! by other braiding paths"). The scheduler clears the map between steps.

use crate::geometry::Vertex;
use crate::grid::Grid;

/// A bitmap of reserved routing vertices for one braiding step.
///
/// # Examples
///
/// ```
/// use autobraid_lattice::grid::Grid;
/// use autobraid_lattice::occupancy::Occupancy;
/// use autobraid_lattice::geometry::Vertex;
///
/// let grid = Grid::new(4)?;
/// let mut occ = Occupancy::new(&grid);
/// let path = [Vertex::new(0, 0), Vertex::new(0, 1), Vertex::new(1, 1)];
/// assert!(occ.try_reserve(&grid, path.iter().copied()));
/// assert!(occ.is_occupied(&grid, Vertex::new(0, 1)));
/// assert!(!occ.try_reserve(&grid, [Vertex::new(1, 1)].into_iter()));
/// # Ok::<(), autobraid_lattice::error::LatticeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occupancy {
    bits: Vec<u64>,
    occupied: usize,
    capacity: usize,
}

impl Occupancy {
    /// Creates an empty occupancy map for `grid`.
    pub fn new(grid: &Grid) -> Self {
        let capacity = grid.vertex_count();
        Occupancy {
            bits: vec![0; capacity.div_ceil(64)],
            occupied: 0,
            capacity,
        }
    }

    /// Whether `v` is currently reserved.
    #[inline]
    pub fn is_occupied(&self, grid: &Grid, v: Vertex) -> bool {
        let i = grid.vertex_index(v);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether `v` is free.
    #[inline]
    pub fn is_free(&self, grid: &Grid, v: Vertex) -> bool {
        !self.is_occupied(grid, v)
    }

    /// Reserves a single vertex. Returns `false` (and reserves nothing) if
    /// it was already taken.
    pub fn reserve(&mut self, grid: &Grid, v: Vertex) -> bool {
        let i = grid.vertex_index(v);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.occupied += 1;
        true
    }

    /// Atomically reserves every vertex of a path. If any vertex is already
    /// reserved, nothing is changed and `false` is returned.
    pub fn try_reserve<I>(&mut self, grid: &Grid, path: I) -> bool
    where
        I: IntoIterator<Item = Vertex> + Clone,
    {
        if path.clone().into_iter().any(|v| self.is_occupied(grid, v)) {
            return false;
        }
        for v in path {
            let reserved = self.reserve(grid, v);
            debug_assert!(reserved, "duplicate vertex within one path");
        }
        true
    }

    /// Releases a previously reserved vertex.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` was not reserved.
    pub fn release(&mut self, grid: &Grid, v: Vertex) {
        let i = grid.vertex_index(v);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        debug_assert!(self.bits[word] & mask != 0, "releasing free vertex {v}");
        if self.bits[word] & mask != 0 {
            self.bits[word] &= !mask;
            self.occupied -= 1;
        }
    }

    /// Releases every vertex of a path.
    pub fn release_path<I: IntoIterator<Item = Vertex>>(&mut self, grid: &Grid, path: I) {
        for v in path {
            self.release(grid, v);
        }
    }

    /// Clears all reservations (start of a new braiding step).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.occupied = 0;
    }

    /// Number of reserved vertices.
    #[inline]
    pub fn occupied_count(&self) -> usize {
        self.occupied
    }

    /// Fraction of routing vertices reserved, in `[0, 1]` — the paper's
    /// *resource usage ratio* for one step.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupied as f64 / self.capacity as f64
        }
    }

    /// Marks every vertex reserved in `other` as reserved here too
    /// (set union). Used by time-sliced routers that must find paths free
    /// across several consecutive windows.
    ///
    /// # Panics
    ///
    /// Panics if the two maps belong to differently sized grids.
    pub fn union_with(&mut self, other: &Occupancy) {
        assert_eq!(
            self.capacity, other.capacity,
            "occupancy maps of different grids"
        );
        let mut occupied = 0usize;
        for (word, &other_word) in self.bits.iter_mut().zip(&other.bits) {
            *word |= other_word;
            occupied += word.count_ones() as usize;
        }
        self.occupied = occupied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(4).unwrap()
    }

    #[test]
    fn starts_empty() {
        let g = grid();
        let occ = Occupancy::new(&g);
        assert_eq!(occ.occupied_count(), 0);
        assert_eq!(occ.utilization(), 0.0);
        for v in g.vertices() {
            assert!(occ.is_free(&g, v));
        }
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let g = grid();
        let mut occ = Occupancy::new(&g);
        let v = Vertex::new(2, 3);
        assert!(occ.reserve(&g, v));
        assert!(occ.is_occupied(&g, v));
        assert!(!occ.reserve(&g, v), "double reserve must fail");
        assert_eq!(occ.occupied_count(), 1);
        occ.release(&g, v);
        assert!(occ.is_free(&g, v));
        assert_eq!(occ.occupied_count(), 0);
    }

    #[test]
    fn try_reserve_is_atomic() {
        let g = grid();
        let mut occ = Occupancy::new(&g);
        assert!(occ.reserve(&g, Vertex::new(0, 2)));
        // Path crosses the reserved vertex: nothing else must be taken.
        let path = [Vertex::new(0, 0), Vertex::new(0, 1), Vertex::new(0, 2)];
        assert!(!occ.try_reserve(&g, path.iter().copied()));
        assert!(occ.is_free(&g, Vertex::new(0, 0)));
        assert!(occ.is_free(&g, Vertex::new(0, 1)));
        assert_eq!(occ.occupied_count(), 1);
    }

    #[test]
    fn utilization_counts_fraction() {
        let g = grid(); // 25 vertices
        let mut occ = Occupancy::new(&g);
        for v in [Vertex::new(0, 0), Vertex::new(1, 1), Vertex::new(2, 2)] {
            assert!(occ.reserve(&g, v));
        }
        assert!((occ.utilization() - 3.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let g = grid();
        let mut occ = Occupancy::new(&g);
        for v in g.vertices().take(10) {
            occ.reserve(&g, v);
        }
        occ.clear();
        assert_eq!(occ.occupied_count(), 0);
        assert!(g.vertices().all(|v| occ.is_free(&g, v)));
    }

    #[test]
    fn release_path_frees_all() {
        let g = grid();
        let mut occ = Occupancy::new(&g);
        let path = [Vertex::new(3, 0), Vertex::new(3, 1), Vertex::new(4, 1)];
        assert!(occ.try_reserve(&g, path.iter().copied()));
        occ.release_path(&g, path.iter().copied());
        assert_eq!(occ.occupied_count(), 0);
    }
}
